// The batch-analysis engine (`arac --jobs N --cache-dir DIR`): the serve
// subsystem's front door, sitting between the CLI and the compiler
// pipeline. It runs the per-unit phase — parse, lower, IPL local analysis,
// summarization — on a work-stealing thread pool, one task per translation
// unit, consulting the persistent summary cache first so unchanged files
// skip the front end entirely; then it joins the summaries in the serial
// link phase (serve/link.hpp) into the same .rgn/.dgn/.cfg outputs the
// monolithic pipeline produces.
//
// Output bytes are a function of the input sources and options only: not of
// --jobs, not of cache hits vs misses. tests/serve enforces this.
//
// Fault tolerance: each unit task runs inside an error barrier. A unit that
// fails — compile errors, a resource cap, the wall-clock watchdog, an I/O
// fault (real or injected), or any other exception — is demoted to a
// structured UnitFailure, and the link phase proceeds in degraded mode with
// the survivors. One hostile or unlucky unit can never take down the batch.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/layout.hpp"
#include "serve/depmap.hpp"
#include "serve/link.hpp"
#include "serve/summary.hpp"
#include "support/limits.hpp"

namespace ara::serve {

struct BatchOptions {
  std::size_t jobs = 1;   // worker threads; 0 = hardware concurrency
  std::string cache_dir;  // empty = caching disabled
  bool use_cache = true;  // false = --no-cache (ignore and don't write entries)
  bool interprocedural = true;
  bool include_scalars = true;
  /// Per-unit resource guards, installed around each unit task (LimitScope).
  support::ResourceLimits limits;
  ir::LayoutOptions layout;
};

enum class UnitStatus : std::uint8_t {
  Analyzed,  // cache miss (or caching off): full frontend + local analysis
  Cached,    // summary replayed from the cache
  Failed,    // unit did not compile (see UnitReport::failure)
};

/// Why a unit failed, for the .failures.json report and the exit-code sink.
enum class FailureKind : std::uint8_t {
  Compile,   // source did not compile (diagnostics carry the errors)
  Resource,  // a ResourceLimits cap tripped (nesting, AST nodes, trip, arrays, memory)
  Timeout,   // the per-unit wall-clock watchdog expired
  Io,        // an I/O fault survived the retry policy
  Crash,     // any other exception escaped the unit's analysis
};

[[nodiscard]] std::string_view to_string(FailureKind kind);

struct UnitFailure {
  FailureKind kind = FailureKind::Crash;
  std::string reason;  // human-readable, single line
};

struct UnitReport {
  std::string source_name;
  UnitStatus status = UnitStatus::Analyzed;
  std::string diagnostics;  // rendered unit-compile diagnostics ("" if clean)
  std::optional<UnitFailure> failure;  // set iff status == Failed
};

struct BatchResult {
  /// Clean success: every unit analyzed and the link succeeded.
  bool ok = false;
  /// Degraded success: `failed_units` > 0 but the survivors linked. The
  /// link artifacts cover the surviving units only (arac exits 2).
  bool partial = false;
  std::vector<UnitReport> units;  // in input order
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t failed_units = 0;
  /// Units re-summarized only because a dependency changed (their own text
  /// and cache entry were fine): the dependency-aware invalidation front
  /// minus the changed units themselves.
  std::uint64_t invalidated_units = 0;
  /// Cache hits served from IncrementalState memory without touching disk
  /// (daemon warm state); a subset of cache_hits.
  std::uint64_t resident_hits = 0;
  /// Valid when ok or partial: rows, .dgn project, .cfg text, the
  /// reconstructed program, and link diagnostics.
  LinkResult link;
  /// Provenance cause records, merged in (unit, seq) order: per-unit records
  /// in input order (replayed from the cache on hits), then the serial link
  /// phase's records under obs::kLinkUnit. Byte-stable across --jobs values
  /// and cache states.
  std::vector<obs::ProvRecord> provenance;
};

/// One in-memory translation unit.
struct SourceBuffer {
  std::string name;  // display/object name (file name, not path)
  std::string text;
  Language lang = Language::Fortran;
};

/// Loads a source file, choosing the language by extension exactly like
/// driver::Compiler::add_file. Returns nullopt if unreadable; `warning`
/// (when non-null) receives the unknown-extension message, if any.
[[nodiscard]] std::optional<SourceBuffer> read_source(const std::filesystem::path& path,
                                                      std::string* warning);

/// One unit summary held in memory across runs (daemon warm state).
struct ResidentUnit {
  std::string key;      // cache key the summary was produced under
  UnitSummary summary;  // reused verbatim while the key still matches
};

/// Warm analysis state carried across run_batch calls on the same project:
/// the last run's dependency map (drives invalidation and import-aware
/// cache keys) and, when `keep_resident`, the unit summaries themselves so
/// a warm daemon never re-reads the disk cache for unchanged units.
struct IncrementalState {
  DepMap depmap;
  std::map<std::string, ResidentUnit> resident;  // unit name -> last summary
  bool keep_resident = true;
  /// Rough resident footprint (symbols + records + texts), for the daemon's
  /// LRU memory budget.
  [[nodiscard]] std::size_t resident_bytes() const;
};

/// Runs the full batch: parallel per-unit phase, then serial link. With a
/// persistent cache dir this is dependency-aware: a changed unit forces
/// re-summarization of itself plus its transitive dependents (reverse
/// closure over the persisted deps.map), everything else replays.
[[nodiscard]] BatchResult run_batch(const std::vector<SourceBuffer>& sources,
                                    const BatchOptions& opts, const std::string& name);

/// As above, with caller-owned warm state (the daemon's per-project state).
/// `inc` may be null; when non-null it is consulted for resident summaries
/// and refreshed (depmap + resident units) after the batch.
[[nodiscard]] BatchResult run_batch(const std::vector<SourceBuffer>& sources,
                                    const BatchOptions& opts, const std::string& name,
                                    IncrementalState* inc);

}  // namespace ara::serve
