// The batch-analysis engine (`arac --jobs N --cache-dir DIR`): the serve
// subsystem's front door, sitting between the CLI and the compiler
// pipeline. It runs the per-unit phase — parse, lower, IPL local analysis,
// summarization — on a work-stealing thread pool, one task per translation
// unit, consulting the persistent summary cache first so unchanged files
// skip the front end entirely; then it joins the summaries in the serial
// link phase (serve/link.hpp) into the same .rgn/.dgn/.cfg outputs the
// monolithic pipeline produces.
//
// Output bytes are a function of the input sources and options only: not of
// --jobs, not of cache hits vs misses. tests/serve enforces this.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ir/layout.hpp"
#include "serve/link.hpp"
#include "serve/summary.hpp"

namespace ara::serve {

struct BatchOptions {
  std::size_t jobs = 1;   // worker threads; 0 = hardware concurrency
  std::string cache_dir;  // empty = caching disabled
  bool use_cache = true;  // false = --no-cache (ignore and don't write entries)
  bool interprocedural = true;
  bool include_scalars = true;
  ir::LayoutOptions layout;
};

enum class UnitStatus : std::uint8_t {
  Analyzed,  // cache miss (or caching off): full frontend + local analysis
  Cached,    // summary replayed from the cache
  Failed,    // unit did not compile
};

struct UnitReport {
  std::string source_name;
  UnitStatus status = UnitStatus::Analyzed;
  std::string diagnostics;  // rendered unit-compile diagnostics ("" if clean)
};

struct BatchResult {
  bool ok = false;
  std::vector<UnitReport> units;  // in input order
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Valid when every unit compiled: rows, .dgn project, .cfg text, the
  /// reconstructed program, and link diagnostics.
  LinkResult link;
};

/// One in-memory translation unit.
struct SourceBuffer {
  std::string name;  // display/object name (file name, not path)
  std::string text;
  Language lang = Language::Fortran;
};

/// Loads a source file, choosing the language by extension exactly like
/// driver::Compiler::add_file. Returns nullopt if unreadable; `warning`
/// (when non-null) receives the unknown-extension message, if any.
[[nodiscard]] std::optional<SourceBuffer> read_source(const std::filesystem::path& path,
                                                      std::string* warning);

/// Runs the full batch: parallel per-unit phase, then serial link.
[[nodiscard]] BatchResult run_batch(const std::vector<SourceBuffer>& sources,
                                    const BatchOptions& opts, const std::string& name);

}  // namespace ara::serve
