// FNV-1a 64-bit content hashing for the serve engine's summary cache keys.
// A cache entry is valid only for the exact source text, analyzer version
// and analysis flags that produced it, so the key mixes all three (see
// docs/serve.md for the precise key definition). FNV-1a is not
// collision-proof against adversaries, but cache poisoning is out of scope:
// the cache directory is as trusted as the tool's own output files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ara::serve {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Streaming FNV-1a 64. Field boundaries must be made explicit by the
/// caller (see Hasher::field) so that ("ab","c") and ("a","bc") differ.
class Hasher {
 public:
  Hasher& update(std::string_view bytes) {
    for (const char c : bytes) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= kFnvPrime;
    }
    return *this;
  }

  /// Appends one delimited field: its length, then its bytes. This makes
  /// the encoding prefix-free, so adjacent fields cannot alias.
  Hasher& field(std::string_view bytes) {
    update_u64(bytes.size());
    return update(bytes);
  }

  Hasher& update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= static_cast<unsigned char>(v >> (8 * i));
      h_ *= kFnvPrime;
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

  /// 16 lowercase hex digits (cache entry file names).
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// One-shot convenience.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

}  // namespace ara::serve
