#include "serve/engine.hpp"

#include <chrono>
#include <fstream>
#include <iterator>
#include <new>
#include <sstream>

#include <set>

#include "frontend/compile.hpp"
#include "obs/eventlog.hpp"
#include "obs/provenance.hpp"
#include "obs/histogram.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "serve/cache.hpp"
#include "serve/globals.hpp"
#include "serve/threadpool.hpp"
#include "support/faultinject.hpp"
#include "support/string_utils.hpp"

namespace ara::serve {

ARA_STATISTIC(stat_batch_units, "serve.units", "Translation units submitted to the batch engine");
ARA_STATISTIC(stat_units_analyzed, "serve.units_analyzed",
              "Units that went through the full frontend + local analysis");
ARA_STATISTIC(stat_unit_failures, "serve.unit_failures",
              "Units demoted to a UnitFailure by the per-unit error barrier");
ARA_STATISTIC(stat_degraded_runs, "serve.degraded_runs",
              "Batches that linked in degraded mode (some units dropped)");
ARA_STATISTIC(stat_invalidated, "serve.invalidated_units",
              "Unchanged units re-summarized because a dependency changed");
ARA_STATISTIC(stat_resident_hits, "serve.resident_hits",
              "Summaries reused from warm in-memory state (no disk cache read)");

ARA_HISTOGRAM(hist_queue_wait, "serve.queue_wait_ns",
              "Per-unit wait between batch submission and a worker picking it up", "ns");
ARA_HISTOGRAM(hist_unit_parse, "serve.unit_parse_ns",
              "Per-unit frontend compile (parse + lower) latency", "ns");
ARA_HISTOGRAM(hist_unit_summarize, "serve.unit_summarize_ns",
              "Per-unit local analysis + summary extraction latency", "ns");

std::string_view to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::Compile: return "compile";
    case FailureKind::Resource: return "resource";
    case FailureKind::Timeout: return "timeout";
    case FailureKind::Io: return "io";
    case FailureKind::Crash: return "crash";
  }
  return "crash";
}

namespace {

/// Folds every option that changes a unit's summary (or how it may be
/// consumed) into the cache key.
std::string flags_string(const BatchOptions& opts) {
  std::string flags = "ipa=";
  flags += opts.interprocedural ? '1' : '0';
  flags += ";scalars=";
  flags += opts.include_scalars ? '1' : '0';
  return flags;
}

/// Demotes a unit to Failed with a structured reason, and drops a
/// zero-length "fail:<unit>" span into the trace so degraded runs are
/// visible on the timeline.
void fail_unit(UnitReport& report, std::size_t unit, FailureKind kind, std::string reason) {
  report.status = UnitStatus::Failed;
  report.failure = UnitFailure{kind, std::move(reason)};
  stat_unit_failures.bump();
  obs::EventLog::instance().record(static_cast<std::uint32_t>(unit), report.source_name,
                                   obs::UnitEvent::Failed, to_string(kind));
  obs::Span marker("fail:" + report.source_name, "failure");
}

}  // namespace

std::optional<SourceBuffer> read_source(const std::filesystem::path& path,
                                        std::string* warning) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  SourceBuffer src;
  src.name = path.filename().string();
  src.text = buf.str();
  const std::string ext = to_lower(path.extension().string());
  if (ext == ".c" || ext == ".h") {
    src.lang = Language::C;
  } else {
    src.lang = Language::Fortran;
    if (ext != ".f" && ext != ".f90" && ext != ".for" && ext != ".f77" &&
        warning != nullptr) {
      *warning = "unrecognized extension '" + ext + "' on '" + src.name +
                 "'; assuming Fortran";
    }
  }
  return src;
}

std::size_t IncrementalState::resident_bytes() const {
  // Deliberately rough: strings dominate a UnitSummary's footprint, so the
  // estimate sums the big blobs plus a fixed per-record overhead.
  std::size_t total = 0;
  for (const auto& [unit_name, res] : resident) {
    total += unit_name.size() + res.key.size() + sizeof(ResidentUnit);
    const UnitSummary& s = res.summary;
    total += s.source_name.size() + s.cfg_text.size() + s.diagnostics.size();
    total += s.symbols.size() * (sizeof(SymInfo) + 24);
    for (const ProcSummary& p : s.procs) {
      total += sizeof(ProcSummary);
      total += p.records.size() * (sizeof(RecordSummary) + 64);
      total += p.effects.size() * (sizeof(EffectSummary) + 64);
      total += p.callsites.size() * (sizeof(CallSummary) + 32);
    }
    total += s.externs.size() * sizeof(ExternSummary);
    total += s.provenance.size() * (sizeof(obs::ProvRecord) + 48);
  }
  return total;
}

BatchResult run_batch(const std::vector<SourceBuffer>& sources, const BatchOptions& opts,
                      const std::string& name) {
  return run_batch(sources, opts, name, nullptr);
}

BatchResult run_batch(const std::vector<SourceBuffer>& sources, const BatchOptions& opts,
                      const std::string& name, IncrementalState* inc) {
  ARA_SPAN("batch", "serve");
  BatchResult result;
  result.units.resize(sources.size());

  const SummaryCache cache(opts.cache_dir, opts.use_cache && !opts.cache_dir.empty());
  const std::string flags = flags_string(opts);

  // Cross-unit global-declaration import (scoped v1: C units only): the
  // shapes sema may resolve otherwise-undeclared references against.
  const fe::GlobalImportTable import_index = build_global_index(sources);

  // Plain batch runs get a throwaway state seeded from the persisted map so
  // `arac --cache-dir` shares the daemon's dependency-aware invalidation.
  std::optional<IncrementalState> local_state;
  if (inc == nullptr && cache.enabled()) {
    local_state.emplace();
    local_state->keep_resident = false;
    local_state->depmap = DepMap::load(opts.cache_dir);
    inc = &*local_state;
  }

  // Serial pre-pass: per-unit lookup keys — text + flags + the import shapes
  // this unit resolved against last run (recorded in the depmap, so the key
  // is computable before compiling) — then the invalidation front: units
  // with no reusable summary, plus every transitive dependent under the
  // reverse dependency closure.
  std::vector<std::string> keys(sources.size());
  std::set<std::string> changed_units;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    std::string key_flags = flags;
    if (sources[i].lang == Language::C && inc != nullptr) {
      if (const UnitDeps* prior = inc->depmap.find(sources[i].name)) {
        key_flags += import_flags(prior->imports, import_index);
      }
    }
    keys[i] =
        SummaryCache::key_for(sources[i].name, sources[i].text, sources[i].lang, key_flags);
    bool reusable = false;
    if (inc != nullptr) {
      const auto it = inc->resident.find(sources[i].name);
      reusable = it != inc->resident.end() && it->second.key == keys[i];
    }
    if (!reusable && cache.enabled()) reusable = cache.contains(keys[i]);
    if (!reusable) changed_units.insert(sources[i].name);
  }
  const std::set<std::string> invalid =
      inc != nullptr ? inc->depmap.dependents_closure(changed_units) : changed_units;
  std::vector<char> forced(sources.size(), 0);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    forced[i] = invalid.count(sources[i].name) != 0 &&
                changed_units.count(sources[i].name) == 0;
    if (forced[i]) {
      ++result.invalidated_units;
      stat_invalidated.bump();
    }
  }

  std::vector<std::optional<UnitSummary>> summaries(sources.size());
  std::vector<std::string> store_keys(keys);
  std::vector<std::vector<std::string>> unit_imports(sources.size());
  std::vector<char> resident_hit(sources.size(), 0);
  std::vector<std::string> texts(sources.size());
  // Per-unit provenance capture. Always on — records must land in the
  // summary (and the cache) even when this run doesn't render them, so a
  // later warm-cache --explain replays them byte-identically.
  std::vector<std::vector<obs::ProvRecord>> unit_prov(sources.size());

  auto& events = obs::EventLog::instance();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    events.record(static_cast<std::uint32_t>(i), sources[i].name, obs::UnitEvent::Queued);
  }

  {
    ARA_SPAN("units", "serve");
    const auto submitted = std::chrono::steady_clock::now();
    ThreadPool pool(opts.jobs);
    pool.parallel_for(sources.size(), [&](std::size_t i) {
      // Each worker gets its own trace lane, so per-unit spans render as
      // parallel tracks in the Chrome trace instead of one nested stack.
      obs::set_lane(static_cast<std::uint32_t>(ThreadPool::current_worker()));
      if (obs::enabled()) {
        hist_queue_wait.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - submitted)
                .count()));
      }
      events.record(static_cast<std::uint32_t>(i), sources[i].name, obs::UnitEvent::Started);
      obs::Span unit_span(sources[i].name, "serve");
      stat_batch_units.bump();

      UnitReport& report = result.units[i];
      report.source_name = sources[i].name;
      texts[i] = sources[i].text;
      obs::ProvSink prov_sink(&unit_prov[i], static_cast<std::uint32_t>(i));

      // Error barrier: nothing one unit does — a hostile input tripping a
      // resource cap, the watchdog, an I/O fault real or injected, or a
      // plain bug throwing — may take down the batch. Every failure mode
      // becomes a structured UnitFailure and the link proceeds without it.
      try {
        const support::LimitScope guard(opts.limits);

        const std::string& key = keys[i];
        if (!forced[i]) {
          // Warm in-memory state first (daemon): the summary is reused
          // verbatim, no disk read, no deserialization.
          if (inc != nullptr) {
            const auto it = inc->resident.find(sources[i].name);
            if (it != inc->resident.end() && it->second.key == key) {
              events.record(static_cast<std::uint32_t>(i), sources[i].name,
                            obs::UnitEvent::CacheHit, "resident");
              stat_resident_hits.bump();
              resident_hit[i] = 1;
              report.diagnostics = it->second.summary.diagnostics;
              unit_prov[i] = it->second.summary.provenance;
              for (obs::ProvRecord& p : unit_prov[i]) {
                p.unit = static_cast<std::uint32_t>(i);
              }
              summaries[i] = it->second.summary;
              report.status = UnitStatus::Cached;
              events.record(static_cast<std::uint32_t>(i), sources[i].name,
                            obs::UnitEvent::Summarized, "resident");
              return;
            }
          }
          if (auto hit = cache.load(key)) {
            // Replay the cached unit's rendered warnings byte-identically,
            // so a hit is indistinguishable from a re-analysis on the
            // console.
            events.record(static_cast<std::uint32_t>(i), sources[i].name,
                          obs::UnitEvent::CacheHit);
            report.diagnostics = hit->diagnostics;
            unit_prov[i] = hit->provenance;
            for (obs::ProvRecord& p : unit_prov[i]) p.unit = static_cast<std::uint32_t>(i);
            summaries[i] = std::move(*hit);
            report.status = UnitStatus::Cached;
            events.record(static_cast<std::uint32_t>(i), sources[i].name,
                          obs::UnitEvent::Summarized, "cached");
            return;
          }
        }
        events.record(static_cast<std::uint32_t>(i), sources[i].name,
                      obs::UnitEvent::CacheMiss, forced[i] ? "invalidated" : "");

        if (ARA_FAILPOINT("unit.analyze", sources[i].name)) {
          throw fi::IoFault("injected I/O fault analyzing '" + sources[i].name + "'");
        }

        // Miss (or caching off, or dependency-invalidated): compile this
        // unit alone, with unresolved calls deferred to the link phase and
        // undeclared C globals resolved from the sibling-unit import index.
        ir::Program program;
        program.sources.add(sources[i].name, sources[i].text, sources[i].lang);
        DiagnosticEngine diags(&program.sources);
        std::vector<fe::ExternRef> externs;
        fe::CompileOptions copts;
        copts.external_calls = true;
        copts.imports = import_index.empty() ? nullptr : &import_index;
        bool ok = false;
        {
          obs::ScopedLatency parse_latency(hist_unit_parse);
          ok = fe::compile_program(program, diags, copts, &externs, &unit_imports[i]);
        }
        report.diagnostics = diags.render();
        if (!ok) {
          fail_unit(report, i, FailureKind::Compile, "unit did not compile");
          return;
        }
        stat_units_analyzed.bump();
        {
          obs::ScopedLatency summarize_latency(hist_unit_summarize);
          summaries[i] = summarize_unit(program, externs, unit_imports[i]);
        }
        summaries[i]->diagnostics = report.diagnostics;
        summaries[i]->provenance = unit_prov[i];
        // The store key folds in the shapes actually imported (the lookup
        // key used last run's recorded imports; they agree whenever the text
        // is unchanged, and a changed text misses on the text hash anyway).
        if (sources[i].lang == Language::C && !unit_imports[i].empty()) {
          store_keys[i] = SummaryCache::key_for(
              sources[i].name, sources[i].text, sources[i].lang,
              flags + import_flags(unit_imports[i], import_index));
        }
        if (cache.enabled()) cache.store(store_keys[i], *summaries[i]);
        report.status = UnitStatus::Analyzed;
        events.record(static_cast<std::uint32_t>(i), sources[i].name,
                      obs::UnitEvent::Summarized);
      } catch (const support::TimeoutError& e) {
        fail_unit(report, i, FailureKind::Timeout, e.what());
      } catch (const support::ResourceLimitError& e) {
        fail_unit(report, i, FailureKind::Resource, e.what());
      } catch (const fi::IoFault& e) {
        fail_unit(report, i, FailureKind::Io, e.what());
      } catch (const std::bad_alloc&) {
        fail_unit(report, i, FailureKind::Resource, "out of memory analyzing unit");
      } catch (const std::exception& e) {
        fail_unit(report, i, FailureKind::Crash, e.what());
      } catch (...) {
        fail_unit(report, i, FailureKind::Crash, "unknown exception analyzing unit");
      }
      // A failed unit never contributes to the link, even if the exception
      // escaped mid-summarization.
      if (report.status == UnitStatus::Failed) {
        summaries[i].reset();
        // Records captured before the failure depend on where the barrier
        // struck; keep only the demotion cause so the export stays
        // deterministic (cross-ref: the UnitFailure in .failures.json).
        unit_prov[i].clear();
        obs::ProvRecord demote;
        demote.unit = static_cast<std::uint32_t>(i);
        demote.kind = obs::CauseKind::LimitDemotion;
        demote.file = report.source_name;
        demote.detail = std::string(to_string(report.failure->kind)) + ": " +
                        report.failure->reason;
        unit_prov[i].push_back(std::move(demote));
      }
    });
    obs::set_lane(0);
  }

  for (std::size_t i = 0; i < result.units.size(); ++i) {
    const UnitReport& r = result.units[i];
    if (r.status == UnitStatus::Failed) ++result.failed_units;
    if (r.status == UnitStatus::Cached) {
      ++result.cache_hits;
      if (resident_hit[i] != 0) ++result.resident_hits;
    } else {
      ++result.cache_misses;
    }
  }

  // Refresh the dependency map from this run's summaries: per unit, the
  // units defining its called extern procedures plus the units declaring
  // its imported globals. Rebuilt from scratch so removed units drop out;
  // failed units keep their previous edges (conservative — their dependents
  // still invalidate when they change back to life).
  if (inc != nullptr) {
    std::map<std::string, std::string> proc_owner;    // lowercase proc -> unit
    std::map<std::string, std::string> global_owner;  // lowercase global -> unit
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      if (!summaries[i]) continue;
      for (const SymInfo& sym : summaries[i]->symbols) {
        if (sym.kind == SymInfo::Kind::Proc) {
          proc_owner.emplace(to_lower(sym.name), sources[i].name);
        } else if (sym.kind == SymInfo::Kind::Global) {
          global_owner.emplace(to_lower(sym.name), sources[i].name);
        }
      }
    }
    DepMap next;
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      if (!summaries[i]) {
        if (const UnitDeps* prior = inc->depmap.find(sources[i].name)) {
          next.set(sources[i].name, *prior);
        }
        continue;
      }
      UnitDeps deps;
      for (const SymInfo& sym : summaries[i]->symbols) {
        if (sym.kind != SymInfo::Kind::Import) continue;
        const std::string gname = to_lower(sym.name);
        deps.imports.push_back(gname);
        const auto owner = global_owner.find(gname);
        if (owner != global_owner.end()) deps.deps.push_back(owner->second);
      }
      for (const ExternSummary& ext : summaries[i]->externs) {
        const auto owner = proc_owner.find(ext.name);
        if (owner != proc_owner.end()) deps.deps.push_back(owner->second);
      }
      next.set(sources[i].name, std::move(deps));
    }
    inc->depmap = std::move(next);
    if (cache.enabled()) DepMap::store(opts.cache_dir, inc->depmap);
    if (inc->keep_resident) {
      for (std::size_t i = 0; i < summaries.size(); ++i) {
        if (summaries[i]) {
          inc->resident[sources[i].name] = ResidentUnit{store_keys[i], *summaries[i]};
        } else {
          inc->resident.erase(sources[i].name);
        }
      }
    }
  }

  // Link the survivors (everyone, in the clean case), keeping texts
  // parallel to the summaries so diagnostics and the browser still line up.
  std::vector<UnitSummary> units;
  std::vector<std::string> unit_texts;
  std::vector<std::size_t> linked_indices;
  units.reserve(summaries.size());
  unit_texts.reserve(summaries.size());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    if (!summaries[i]) continue;
    units.push_back(std::move(*summaries[i]));
    unit_texts.push_back(std::move(texts[i]));
    linked_indices.push_back(i);
  }
  if (units.empty() && !sources.empty()) return result;  // total failure

  LinkOptions lopts;
  lopts.interprocedural = opts.interprocedural;
  lopts.include_scalars = opts.include_scalars;
  lopts.degraded = result.failed_units > 0;
  lopts.layout = opts.layout;
  std::vector<obs::ProvRecord> link_prov;
  {
    const obs::ProvSink link_sink(&link_prov, obs::kLinkUnit);
    result.link = link_units(units, unit_texts, lopts, name);
  }
  for (std::vector<obs::ProvRecord>& up : unit_prov) {
    result.provenance.insert(result.provenance.end(), std::make_move_iterator(up.begin()),
                             std::make_move_iterator(up.end()));
  }
  result.provenance.insert(result.provenance.end(),
                           std::make_move_iterator(link_prov.begin()),
                           std::make_move_iterator(link_prov.end()));
  for (const std::size_t i : linked_indices) {
    events.record(static_cast<std::uint32_t>(i), sources[i].name, obs::UnitEvent::Linked);
  }
  result.ok = result.failed_units == 0 && result.link.ok;
  result.partial = result.failed_units > 0 && result.link.ok;
  if (result.partial) stat_degraded_runs.bump();
  return result;
}

}  // namespace ara::serve
