#include "serve/engine.hpp"

#include <fstream>
#include <sstream>

#include "frontend/compile.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "serve/cache.hpp"
#include "serve/threadpool.hpp"
#include "support/string_utils.hpp"

namespace ara::serve {

ARA_STATISTIC(stat_batch_units, "serve.units", "Translation units submitted to the batch engine");
ARA_STATISTIC(stat_units_analyzed, "serve.units_analyzed",
              "Units that went through the full frontend + local analysis");

namespace {

/// Folds every option that changes a unit's summary (or how it may be
/// consumed) into the cache key.
std::string flags_string(const BatchOptions& opts) {
  std::string flags = "ipa=";
  flags += opts.interprocedural ? '1' : '0';
  flags += ";scalars=";
  flags += opts.include_scalars ? '1' : '0';
  return flags;
}

}  // namespace

std::optional<SourceBuffer> read_source(const std::filesystem::path& path,
                                        std::string* warning) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  SourceBuffer src;
  src.name = path.filename().string();
  src.text = buf.str();
  const std::string ext = to_lower(path.extension().string());
  if (ext == ".c" || ext == ".h") {
    src.lang = Language::C;
  } else {
    src.lang = Language::Fortran;
    if (ext != ".f" && ext != ".f90" && ext != ".for" && ext != ".f77" &&
        warning != nullptr) {
      *warning = "unrecognized extension '" + ext + "' on '" + src.name +
                 "'; assuming Fortran";
    }
  }
  return src;
}

BatchResult run_batch(const std::vector<SourceBuffer>& sources, const BatchOptions& opts,
                      const std::string& name) {
  ARA_SPAN("batch", "serve");
  BatchResult result;
  result.units.resize(sources.size());

  const SummaryCache cache(opts.cache_dir, opts.use_cache && !opts.cache_dir.empty());
  const std::string flags = flags_string(opts);

  std::vector<std::optional<UnitSummary>> summaries(sources.size());
  std::vector<std::string> texts(sources.size());

  {
    ARA_SPAN("units", "serve");
    ThreadPool pool(opts.jobs);
    pool.parallel_for(sources.size(), [&](std::size_t i) {
      // Each worker gets its own trace lane, so per-unit spans render as
      // parallel tracks in the Chrome trace instead of one nested stack.
      obs::set_lane(static_cast<std::uint32_t>(ThreadPool::current_worker()));
      obs::Span unit_span(sources[i].name, "serve");
      stat_batch_units.bump();

      UnitReport& report = result.units[i];
      report.source_name = sources[i].name;
      texts[i] = sources[i].text;

      const std::string key =
          SummaryCache::key_for(sources[i].name, sources[i].text, sources[i].lang, flags);
      if (auto hit = cache.load(key)) {
        summaries[i] = std::move(*hit);
        report.status = UnitStatus::Cached;
        return;
      }

      // Miss (or caching off): compile this unit alone, with unresolved
      // calls deferred to the link phase.
      ir::Program program;
      program.sources.add(sources[i].name, sources[i].text, sources[i].lang);
      DiagnosticEngine diags(&program.sources);
      std::vector<fe::ExternRef> externs;
      fe::CompileOptions copts;
      copts.external_calls = true;
      const bool ok = fe::compile_program(program, diags, copts, &externs);
      report.diagnostics = diags.render();
      if (!ok) {
        report.status = UnitStatus::Failed;
        return;
      }
      stat_units_analyzed.bump();
      summaries[i] = summarize_unit(program, externs);
      if (cache.enabled()) cache.store(key, *summaries[i]);
      report.status = UnitStatus::Analyzed;
    });
    obs::set_lane(0);
  }

  bool all_compiled = true;
  for (const UnitReport& r : result.units) {
    if (r.status == UnitStatus::Failed) all_compiled = false;
    if (r.status == UnitStatus::Cached) {
      ++result.cache_hits;
    } else {
      ++result.cache_misses;
    }
  }
  if (!all_compiled) return result;

  std::vector<UnitSummary> units;
  units.reserve(summaries.size());
  for (std::optional<UnitSummary>& s : summaries) units.push_back(std::move(*s));

  LinkOptions lopts;
  lopts.interprocedural = opts.interprocedural;
  lopts.include_scalars = opts.include_scalars;
  lopts.layout = opts.layout;
  result.link = link_units(units, texts, lopts, name);
  result.ok = result.link.ok;
  return result;
}

}  // namespace ara::serve
