#include "serve/lockfile.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <system_error>
#include <thread>

#include "support/faultinject.hpp"

namespace ara::serve {

namespace fs = std::filesystem;

DirLock::DirLock(fs::path dir, std::chrono::milliseconds stale_after)
    : lock_path_(std::move(dir) / ".arac.lock"), stale_after_(stale_after) {}

DirLock::~DirLock() { release(); }

bool DirLock::acquire(std::chrono::milliseconds timeout) {
  if (held_) return true;
  try {
    fi::check_io(kFailpoint);
  } catch (const fi::IoFault&) {
    return false;  // injected "lock never becomes available"
  }

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::chrono::milliseconds backoff(1);
  for (;;) {
    // O_EXCL is the atomicity guarantee: exactly one process creates the
    // file. The pid inside is diagnostic only.
    const int fd = ::open(lock_path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string pid = std::to_string(::getpid()) + "\n";
      // Best-effort write; an empty lock file still locks.
      [[maybe_unused]] const ssize_t n = ::write(fd, pid.data(), pid.size());
      ::close(fd);
      held_ = true;
      return true;
    }

    // Holder alive, holder dead, or the directory is missing. Break the
    // lock if it has outlived any plausible critical section.
    std::error_code ec;
    const auto mtime = fs::last_write_time(lock_path_, ec);
    if (!ec) {
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
          fs::file_time_type::clock::now() - mtime);
      if (age > stale_after_) {
        if (fs::remove(lock_path_, ec) && !ec) ++breaks_;
        continue;  // retry the exclusive create immediately
      }
    }

    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(backoff);
    if (backoff < std::chrono::milliseconds(16)) backoff *= 2;
  }
}

bool DirLock::refresh() {
  if (!held_) return false;
  // Rewriting (not recreating) keeps the O_EXCL story intact: the file must
  // already exist, we only bump its mtime. O_TRUNC without O_CREAT fails
  // with ENOENT when a waiter has broken the lock — in that case ownership
  // is already lost and we must not resurrect the file.
  const int fd = ::open(lock_path_.c_str(), O_WRONLY | O_TRUNC);
  if (fd < 0) return false;
  const std::string pid = std::to_string(::getpid()) + "\n";
  [[maybe_unused]] const ssize_t n = ::write(fd, pid.data(), pid.size());
  ::close(fd);
  refreshes_.fetch_add(1);
  return true;
}

void DirLock::start_heartbeat() {
  if (!held_ || heartbeat_.joinable()) return;
  hb_stop_ = false;
  const auto interval =
      std::max<std::chrono::milliseconds>(stale_after_ / 3, std::chrono::milliseconds(10));
  heartbeat_ = std::thread([this, interval] {
    std::unique_lock<std::mutex> lk(hb_mu_);
    for (;;) {
      if (hb_cv_.wait_for(lk, interval, [this] { return hb_stop_; })) return;
      refresh();
    }
  });
}

void DirLock::stop_heartbeat() {
  if (!heartbeat_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lk(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  heartbeat_.join();
}

void DirLock::release() {
  stop_heartbeat();
  if (!held_) return;
  std::error_code ec;
  fs::remove(lock_path_, ec);
  held_ = false;
}

}  // namespace ara::serve
