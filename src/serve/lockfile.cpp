#include "serve/lockfile.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <system_error>
#include <thread>

#include "support/faultinject.hpp"

namespace ara::serve {

namespace fs = std::filesystem;

DirLock::DirLock(fs::path dir, std::chrono::milliseconds stale_after)
    : lock_path_(std::move(dir) / ".arac.lock"), stale_after_(stale_after) {}

DirLock::~DirLock() { release(); }

bool DirLock::acquire(std::chrono::milliseconds timeout) {
  if (held_) return true;
  try {
    fi::check_io(kFailpoint);
  } catch (const fi::IoFault&) {
    return false;  // injected "lock never becomes available"
  }

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::chrono::milliseconds backoff(1);
  for (;;) {
    // O_EXCL is the atomicity guarantee: exactly one process creates the
    // file. The pid inside is diagnostic only.
    const int fd = ::open(lock_path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string pid = std::to_string(::getpid()) + "\n";
      // Best-effort write; an empty lock file still locks.
      [[maybe_unused]] const ssize_t n = ::write(fd, pid.data(), pid.size());
      ::close(fd);
      held_ = true;
      return true;
    }

    // Holder alive, holder dead, or the directory is missing. Break the
    // lock if it has outlived any plausible critical section.
    std::error_code ec;
    const auto mtime = fs::last_write_time(lock_path_, ec);
    if (!ec) {
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
          fs::file_time_type::clock::now() - mtime);
      if (age > stale_after_) {
        if (fs::remove(lock_path_, ec) && !ec) ++breaks_;
        continue;  // retry the exclusive create immediately
      }
    }

    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(backoff);
    if (backoff < std::chrono::milliseconds(16)) backoff *= 2;
  }
}

void DirLock::release() {
  if (!held_) return;
  std::error_code ec;
  fs::remove(lock_path_, ec);
  held_ = false;
}

}  // namespace ara::serve
