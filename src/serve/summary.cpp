#include "serve/summary.hpp"

#include <sstream>

#include "cfg/cfg.hpp"
#include "ipa/callgraph.hpp"
#include "ipa/local.hpp"
#include "ipa/summary_io.hpp"
#include "ipa/wn_affine.hpp"
#include "support/string_utils.hpp"

namespace ara::serve {

namespace io = ipa::io;

namespace {

constexpr std::string_view kMagic = "ARA-UNIT 4";  // v4: Import symbol kind

char kind_tag(SymInfo::Kind k) {
  switch (k) {
    case SymInfo::Kind::Proc:
      return 'P';
    case SymInfo::Kind::Extern:
      return 'X';
    case SymInfo::Kind::Global:
      return 'G';
    case SymInfo::Kind::Formal:
      return 'F';
    case SymInfo::Kind::Local:
      return 'L';
    case SymInfo::Kind::Import:
      return 'I';
  }
  return '?';
}

std::optional<SymInfo::Kind> kind_from_tag(char c) {
  switch (c) {
    case 'P':
      return SymInfo::Kind::Proc;
    case 'X':
      return SymInfo::Kind::Extern;
    case 'G':
      return SymInfo::Kind::Global;
    case 'F':
      return SymInfo::Kind::Formal;
    case 'L':
      return SymInfo::Kind::Local;
    case 'I':
      return SymInfo::Kind::Import;
    default:
      return std::nullopt;
  }
}

std::optional<ir::Mtype> mtype_from_name(std::string_view name) {
  using ir::Mtype;
  static constexpr std::pair<std::string_view, Mtype> kTable[] = {
      {"V", Mtype::Void},  // ir::mtype_name spelling
      {"I1", Mtype::I1},  {"I2", Mtype::I2}, {"I4", Mtype::I4},
      {"I8", Mtype::I8},  {"U4", Mtype::U4}, {"U8", Mtype::U8},
      {"F4", Mtype::F4},  {"F8", Mtype::F8},
  };
  for (const auto& [n, m] : kTable) {
    if (n == name) return m;
  }
  return std::nullopt;
}

std::string write_dims(const std::vector<SymDim>& dims) {
  if (dims.empty()) return "-";
  std::ostringstream os;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const SymDim& d = dims[i];
    if (i != 0) os << '|';
    os << (d.lb ? std::to_string(*d.lb) : "?") << ';'
       << (d.ub ? std::to_string(*d.ub) : "?") << ';' << io::enc(d.lb_sym) << ';'
       << io::enc(d.ub_sym);
  }
  return os.str();
}

std::optional<std::vector<SymDim>> read_dims(std::string_view tok) {
  std::vector<SymDim> out;
  if (tok == "-") return out;
  while (!tok.empty()) {
    const std::size_t bar = tok.find('|');
    std::string_view one = tok.substr(0, bar);
    tok = bar == std::string_view::npos ? std::string_view{} : tok.substr(bar + 1);
    SymDim d;
    std::string_view fields[4];
    for (int f = 0; f < 4; ++f) {
      const std::size_t semi = one.find(';');
      if (f < 3 && semi == std::string_view::npos) return std::nullopt;
      fields[f] = one.substr(0, semi);
      one = semi == std::string_view::npos ? std::string_view{} : one.substr(semi + 1);
    }
    if (fields[0] != "?") {
      const auto v = io::read_i64(fields[0]);
      if (!v) return std::nullopt;
      d.lb = *v;
    }
    if (fields[1] != "?") {
      const auto v = io::read_i64(fields[1]);
      if (!v) return std::nullopt;
      d.ub = *v;
    }
    const auto lbs = io::dec(fields[2]);
    const auto ubs = io::dec(fields[3]);
    if (!lbs || !ubs) return std::nullopt;
    d.lb_sym = *lbs;
    d.ub_sym = *ubs;
    out.push_back(std::move(d));
  }
  return out;
}

std::string write_actual(const ActualSummary& a) {
  if (!a.present) return "-";
  if (a.is_array) return "a:" + std::to_string(a.array_sym);
  if (a.affine) return "e:" + io::write_linexpr(*a.affine);
  return "u";
}

std::optional<ActualSummary> read_actual(std::string_view tok) {
  ActualSummary a;
  if (tok == "-") return a;
  a.present = true;
  if (tok == "u") return a;
  if (tok.size() >= 2 && tok[1] == ':') {
    if (tok[0] == 'a') {
      const auto v = io::read_u64(tok.substr(2));
      if (!v || *v > 0xffffffffULL) return std::nullopt;
      a.is_array = true;
      a.array_sym = static_cast<std::uint32_t>(*v);
      return a;
    }
    if (tok[0] == 'e') {
      auto e = io::read_linexpr(tok.substr(2));
      if (!e) return std::nullopt;
      a.affine = std::move(*e);
      return a;
    }
  }
  return std::nullopt;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

/// Sequential line reader over the serialized text; also hands out raw byte
/// runs (for the embedded CFG blob).
struct LineReader {
  std::string_view text;
  std::size_t pos = 0;

  std::optional<std::string_view> line() {
    if (pos >= text.size()) return std::nullopt;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) return std::nullopt;  // must end in '\n'
    std::string_view out = text.substr(pos, nl - pos);
    pos = nl + 1;
    return out;
  }

  std::optional<std::string_view> raw(std::size_t n) {
    if (text.size() - pos < n) return std::nullopt;
    std::string_view out = text.substr(pos, n);
    pos += n;
    return out;
  }
};

template <typename T>
bool read_count(std::string_view tok, T* out) {
  const auto v = io::read_u64(tok);
  // Cap collection counts well below anything a real unit produces, so a
  // corrupted count cannot trigger a giant allocation before the payload
  // mismatch is detected.
  if (!v || *v > 100000000ULL) return false;
  *out = static_cast<T>(*v);
  return true;
}

bool read_u32_tok(std::string_view tok, std::uint32_t* out) {
  const auto v = io::read_u64(tok);
  if (!v || *v > 0xffffffffULL) return false;
  *out = static_cast<std::uint32_t>(*v);
  return true;
}

bool read_bool_tok(std::string_view tok, bool* out) {
  if (tok == "0") {
    *out = false;
    return true;
  }
  if (tok == "1") {
    *out = true;
    return true;
  }
  return false;
}

}  // namespace

UnitSummary summarize_unit(const ir::Program& program,
                           const std::vector<fe::ExternRef>& externs,
                           const std::vector<std::string>& imported_globals) {
  UnitSummary unit;
  unit.source_name = program.sources.name(1);
  unit.language = program.sources.language(1);
  const std::set<std::string> imported(imported_globals.begin(), imported_globals.end());

  // Symbols, in creation order (unit StIdx i -> symbols[i-1]).
  for (ir::StIdx idx : program.symtab.all_sts()) {
    const ir::St& st = program.symtab.st(idx);
    const ir::Ty& ty = program.symtab.ty(st.ty);
    SymInfo info;
    info.name = st.name;
    if (st.owner_proc != ir::kInvalidSt) {
      info.owner = to_lower(program.symtab.st(st.owner_proc).name);
    }
    info.formal_pos = st.formal_pos;
    info.line = st.loc.line;
    info.col = st.loc.col;
    info.is_array = ty.is_array();
    info.mtype = ty.mtype;
    info.row_major = ty.row_major;
    info.noncontiguous = ty.noncontiguous;
    info.coarray = ty.coarray;
    for (const ir::ArrayDim& d : ty.dims) {
      info.dims.push_back(SymDim{d.lb, d.ub, d.lb_sym, d.ub_sym});
    }
    if (st.sclass == ir::StClass::Proc) {
      info.kind = program.find_procedure(idx) != nullptr ? SymInfo::Kind::Proc
                                                         : SymInfo::Kind::Extern;
    } else if (st.storage == ir::StStorage::Global) {
      info.kind = imported.count(to_lower(st.name)) != 0 ? SymInfo::Kind::Import
                                                         : SymInfo::Kind::Global;
    } else if (st.storage == ir::StStorage::Formal) {
      info.kind = SymInfo::Kind::Formal;
    } else {
      info.kind = SymInfo::Kind::Local;
    }
    unit.symbols.push_back(std::move(info));
  }

  // Procedures: IPL local analysis + call-site extraction, in the same
  // order the whole-program path would visit them.
  const ipa::CallGraph cg = ipa::CallGraph::build(program);
  const ipa::LocalAnalyzer local(program);
  for (std::uint32_t i = 0; i < cg.size(); ++i) {
    const ipa::CGNode& node = cg.node(i);
    ProcSummary proc;
    proc.sym = node.proc_st - 1;

    const ipa::LocalSummary ls = local.analyze(node);
    for (const ipa::AccessRecord& rec : ls.records) {
      RecordSummary r;
      r.sym = rec.array - 1;
      r.mode = rec.mode;
      r.remote = rec.remote;
      r.image = rec.image;
      r.region = rec.region;
      r.refs = rec.refs;
      r.line = rec.line;
      proc.records.push_back(std::move(r));
    }
    for (const auto& [key, mr] : ls.side_effects.effects) {
      proc.effects.push_back(EffectSummary{key.first - 1, key.second, mr});
    }

    // Call sites in tree-walk order, matching CallGraph::build — but also
    // including calls to extern procedures, which the whole-program call
    // graph would have resolved to their defining unit.
    if (node.proc != nullptr && node.proc->tree) {
      node.proc->tree->walk([&](const ir::WN& wn) {
        if (wn.opr() != ir::Opr::Call || wn.st_idx() == ir::kInvalidSt) return true;
        const ir::St& callee = program.symtab.st(wn.st_idx());
        if (callee.sclass != ir::StClass::Proc) return true;
        CallSummary cs;
        cs.callee = to_lower(callee.name);
        cs.line = wn.linenum().line;
        for (std::size_t k = 0; k < wn.kid_count(); ++k) {
          const ir::WN* parm = wn.kid(k);
          const ir::WN* actual = parm->kid_count() > 0 ? parm->kid(0) : nullptr;
          ActualSummary a;
          if (actual != nullptr) {
            a.present = true;
            if ((actual->opr() == ir::Opr::Lda || actual->opr() == ir::Opr::Ldid) &&
                actual->st_idx() != ir::kInvalidSt &&
                program.symtab.ty(program.symtab.st(actual->st_idx()).ty).is_array()) {
              a.is_array = true;
              a.array_sym = actual->st_idx() - 1;
            } else {
              a.affine = ipa::wn_to_affine(*actual, program.symtab);
            }
          }
          cs.actuals.push_back(std::move(a));
        }
        proc.callsites.push_back(std::move(cs));
        return true;
      });
    }
    unit.procs.push_back(std::move(proc));
  }

  for (const fe::ExternRef& ext : externs) {
    unit.externs.push_back(ExternSummary{ext.name, ext.loc.line});
  }

  // CFG text without the "CFG 1" header, so the link phase can concatenate
  // units under a single header.
  std::string cfg = cfg::write_cfg(cfg::build_all(program));
  if (const std::size_t nl = cfg.find('\n'); nl != std::string::npos) {
    cfg.erase(0, nl + 1);
  }
  unit.cfg_text = std::move(cfg);
  return unit;
}

std::string write_unit_summary(const UnitSummary& unit) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << "unit " << io::enc(unit.source_name) << ' '
     << (unit.language == Language::C ? 'C' : 'F') << '\n';

  os << "syms " << unit.symbols.size() << '\n';
  for (const SymInfo& s : unit.symbols) {
    os << "sym " << kind_tag(s.kind) << ' ' << io::enc(s.name) << ' ' << io::enc(s.owner)
       << ' ' << s.formal_pos << ' ' << s.line << ' ' << s.col << ' '
       << (s.is_array ? 'A' : 'S') << ' ' << ir::mtype_name(s.mtype) << ' '
       << (s.row_major ? 1 : 0) << ' ' << (s.noncontiguous ? 1 : 0) << ' '
       << (s.coarray ? 1 : 0) << ' ' << write_dims(s.dims) << '\n';
  }

  os << "procs " << unit.procs.size() << '\n';
  for (const ProcSummary& p : unit.procs) {
    os << "proc " << p.sym << ' ' << p.records.size() << ' ' << p.effects.size() << ' '
       << p.callsites.size() << '\n';
    for (const RecordSummary& r : p.records) {
      os << "rec " << r.sym << ' ' << io::mode_tag(r.mode) << ' ' << (r.remote ? 1 : 0)
         << ' ' << io::enc(r.image) << ' ' << io::write_region(r.region) << ' ' << r.refs
         << ' ' << r.line << '\n';
    }
    for (const EffectSummary& e : p.effects) {
      os << "eff " << e.sym << ' ' << io::mode_tag(e.mode) << ' '
         << io::write_mode_regions(e.regions) << '\n';
    }
    for (const CallSummary& c : p.callsites) {
      os << "call " << io::enc(c.callee) << ' ' << c.line << ' ' << c.actuals.size();
      for (const ActualSummary& a : c.actuals) os << ' ' << write_actual(a);
      os << '\n';
    }
  }

  os << "exts " << unit.externs.size() << '\n';
  for (const ExternSummary& e : unit.externs) {
    os << "ext " << io::enc(e.name) << ' ' << e.line << '\n';
  }

  // Provenance records in capture order; unit and seq are implicit (the
  // loader re-stamps them), so a cached entry replays under any input index.
  os << "prov " << unit.provenance.size() << '\n';
  for (const obs::ProvRecord& p : unit.provenance) {
    os << "p " << obs::to_string(p.kind) << ' ' << io::enc(p.proc) << ' '
       << io::enc(p.array) << ' ' << p.dim << ' ' << io::enc(p.file) << ' ' << p.line
       << ' ' << io::enc(p.detail) << '\n';
  }

  os << "cfg " << unit.cfg_text.size() << '\n' << unit.cfg_text << '\n';
  os << "diag " << unit.diagnostics.size() << '\n' << unit.diagnostics << "\nend\n";
  return os.str();
}

std::optional<UnitSummary> parse_unit_summary(std::string_view text) {
  LineReader in{text};
  if (in.line() != kMagic) return std::nullopt;

  UnitSummary unit;
  {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 3 || t[0] != "unit") return std::nullopt;
    const auto name = io::dec(t[1]);
    if (!name) return std::nullopt;
    unit.source_name = *name;
    if (t[2] == "C") {
      unit.language = Language::C;
    } else if (t[2] == "F") {
      unit.language = Language::Fortran;
    } else {
      return std::nullopt;
    }
  }

  std::size_t nsyms = 0;
  {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 2 || t[0] != "syms" || !read_count(t[1], &nsyms)) return std::nullopt;
  }
  for (std::size_t i = 0; i < nsyms; ++i) {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 13 || t[0] != "sym" || t[1].size() != 1) return std::nullopt;
    SymInfo s;
    const auto kind = kind_from_tag(t[1][0]);
    const auto name = io::dec(t[2]);
    const auto owner = io::dec(t[3]);
    if (!kind || !name || !owner) return std::nullopt;
    s.kind = *kind;
    s.name = *name;
    s.owner = *owner;
    if (!read_u32_tok(t[4], &s.formal_pos) || !read_u32_tok(t[5], &s.line) ||
        !read_u32_tok(t[6], &s.col)) {
      return std::nullopt;
    }
    if (t[7] == "A") {
      s.is_array = true;
    } else if (t[7] != "S") {
      return std::nullopt;
    }
    const auto mt = mtype_from_name(t[8]);
    if (!mt) return std::nullopt;
    s.mtype = *mt;
    if (!read_bool_tok(t[9], &s.row_major) || !read_bool_tok(t[10], &s.noncontiguous) ||
        !read_bool_tok(t[11], &s.coarray)) {
      return std::nullopt;
    }
    auto dims = read_dims(t[12]);
    if (!dims) return std::nullopt;
    s.dims = std::move(*dims);
    if (s.is_array && s.dims.empty()) return std::nullopt;
    unit.symbols.push_back(std::move(s));
  }

  std::size_t nprocs = 0;
  {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 2 || t[0] != "procs" || !read_count(t[1], &nprocs)) return std::nullopt;
  }
  for (std::size_t i = 0; i < nprocs; ++i) {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 5 || t[0] != "proc") return std::nullopt;
    ProcSummary p;
    std::size_t nrec = 0;
    std::size_t neff = 0;
    std::size_t ncall = 0;
    if (!read_u32_tok(t[1], &p.sym) || !read_count(t[2], &nrec) ||
        !read_count(t[3], &neff) || !read_count(t[4], &ncall)) {
      return std::nullopt;
    }
    if (p.sym >= unit.symbols.size()) return std::nullopt;
    for (std::size_t r = 0; r < nrec; ++r) {
      const auto rl = in.line();
      if (!rl) return std::nullopt;
      const auto rt = split_ws(*rl);
      if (rt.size() != 8 || rt[0] != "rec" || rt[2].size() != 1) return std::nullopt;
      RecordSummary rec;
      const auto mode = io::mode_from_tag(rt[2][0]);
      const auto image = io::dec(rt[4]);
      auto region = io::read_region(rt[5]);
      const auto refs = io::read_u64(rt[6]);
      if (!read_u32_tok(rt[1], &rec.sym) || !mode || !read_bool_tok(rt[3], &rec.remote) ||
          !image || !region || !refs || !read_u32_tok(rt[7], &rec.line)) {
        return std::nullopt;
      }
      if (rec.sym >= unit.symbols.size()) return std::nullopt;
      rec.mode = *mode;
      rec.image = *image;
      rec.region = std::move(*region);
      rec.refs = *refs;
      p.records.push_back(std::move(rec));
    }
    for (std::size_t e = 0; e < neff; ++e) {
      const auto el = in.line();
      if (!el) return std::nullopt;
      const auto et = split_ws(*el);
      if (et.size() != 4 || et[0] != "eff" || et[2].size() != 1) return std::nullopt;
      EffectSummary eff;
      const auto mode = io::mode_from_tag(et[2][0]);
      auto mr = io::read_mode_regions(et[3]);
      if (!read_u32_tok(et[1], &eff.sym) || !mode || !mr) return std::nullopt;
      if (eff.sym >= unit.symbols.size()) return std::nullopt;
      eff.mode = *mode;
      eff.regions = std::move(*mr);
      p.effects.push_back(std::move(eff));
    }
    for (std::size_t c = 0; c < ncall; ++c) {
      const auto cl = in.line();
      if (!cl) return std::nullopt;
      const auto ct = split_ws(*cl);
      if (ct.size() < 4 || ct[0] != "call") return std::nullopt;
      CallSummary cs;
      const auto callee = io::dec(ct[1]);
      std::size_t nact = 0;
      if (!callee || !read_u32_tok(ct[2], &cs.line) || !read_count(ct[3], &nact)) {
        return std::nullopt;
      }
      if (ct.size() != 4 + nact) return std::nullopt;
      cs.callee = *callee;
      for (std::size_t a = 0; a < nact; ++a) {
        auto act = read_actual(ct[4 + a]);
        if (!act) return std::nullopt;
        if (act->is_array && act->array_sym >= unit.symbols.size()) return std::nullopt;
        cs.actuals.push_back(std::move(*act));
      }
      p.callsites.push_back(std::move(cs));
    }
    unit.procs.push_back(std::move(p));
  }

  std::size_t nexts = 0;
  {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 2 || t[0] != "exts" || !read_count(t[1], &nexts)) return std::nullopt;
  }
  for (std::size_t i = 0; i < nexts; ++i) {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 3 || t[0] != "ext") return std::nullopt;
    ExternSummary e;
    const auto name = io::dec(t[1]);
    if (!name || !read_u32_tok(t[2], &e.line)) return std::nullopt;
    e.name = *name;
    unit.externs.push_back(std::move(e));
  }

  std::size_t nprov = 0;
  {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 2 || t[0] != "prov" || !read_count(t[1], &nprov)) return std::nullopt;
  }
  for (std::size_t i = 0; i < nprov; ++i) {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    if (t.size() != 8 || t[0] != "p") return std::nullopt;
    obs::ProvRecord p;
    p.seq = static_cast<std::uint32_t>(i);
    const auto proc = io::dec(t[2]);
    const auto array = io::dec(t[3]);
    const auto dim = io::read_i64(t[4]);
    const auto file = io::dec(t[5]);
    const auto detail = io::dec(t[7]);
    if (!obs::cause_from_string(t[1], &p.kind) || !proc || !array || !dim || *dim < -1 ||
        *dim > 0x7fffffff || !file || !read_u32_tok(t[6], &p.line) || !detail) {
      return std::nullopt;
    }
    p.proc = *proc;
    p.array = *array;
    p.dim = static_cast<std::int32_t>(*dim);
    p.file = *file;
    p.detail = *detail;
    unit.provenance.push_back(std::move(p));
  }

  {
    const auto l = in.line();
    if (!l) return std::nullopt;
    const auto t = split_ws(*l);
    std::size_t nbytes = 0;
    if (t.size() != 2 || t[0] != "cfg" || !read_count(t[1], &nbytes)) return std::nullopt;
    const auto raw = in.raw(nbytes);
    if (!raw) return std::nullopt;
    unit.cfg_text = std::string(*raw);
  }
  {
    const auto l = in.line();
    if (l != std::string_view{}) return std::nullopt;  // '\n' after cfg blob
    const auto dl = in.line();
    if (!dl) return std::nullopt;
    const auto t = split_ws(*dl);
    std::size_t nbytes = 0;
    if (t.size() != 2 || t[0] != "diag" || !read_count(t[1], &nbytes)) return std::nullopt;
    const auto raw = in.raw(nbytes);
    if (!raw) return std::nullopt;
    unit.diagnostics = std::string(*raw);
  }
  if (in.line() != std::string_view{} || in.line() != "end") return std::nullopt;
  return unit;
}

}  // namespace ara::serve
