#include "serve/failure.hpp"

#include <sstream>

#include "support/json.hpp"

namespace ara::serve {

std::string write_failures_json(const std::string& name,
                                const std::vector<UnitReport>& units, int exit_code) {
  std::size_t failed = 0;
  for (const UnitReport& u : units) {
    if (u.status == UnitStatus::Failed) ++failed;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"ara-failures-1\",\n";
  os << "  \"name\": \"" << json::escape(name) << "\",\n";
  os << "  \"exit_code\": " << exit_code << ",\n";
  os << "  \"units_total\": " << units.size() << ",\n";
  os << "  \"units_failed\": " << failed << ",\n";
  os << "  \"units_survived\": " << (units.size() - failed) << ",\n";
  os << "  \"failures\": [";
  bool first = true;
  for (const UnitReport& u : units) {
    if (u.status != UnitStatus::Failed) continue;
    if (!first) os << ',';
    first = false;
    const UnitFailure fallback{FailureKind::Crash, "unknown failure"};
    const UnitFailure& f = u.failure ? *u.failure : fallback;
    os << "\n    {\n";
    os << "      \"unit\": \"" << json::escape(u.source_name) << "\",\n";
    os << "      \"kind\": \"" << to_string(f.kind) << "\",\n";
    os << "      \"reason\": \"" << json::escape(f.reason) << "\"\n";
    os << "    }";
  }
  os << (first ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace ara::serve
