// Work-stealing thread pool for the serve engine's parallel phases. Each
// worker owns a deque: it pushes/pops its own tasks at the back (LIFO, good
// locality for nested submissions) and steals from other workers' fronts
// (FIFO, takes the oldest — likely largest — unit of work). The pool is
// deliberately simple — mutex-guarded deques, one condition variable — the
// per-task work (parsing + region analysis of a translation unit) is
// milliseconds, so queue contention is noise.
//
// A pool constructed with jobs == 1 runs every task inline on the calling
// thread: `arac --jobs 1` is serial by construction, which anchors the
// determinism contract (--jobs N must be byte-identical to --jobs 1).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ara::serve {

class ThreadPool {
 public:
  /// `jobs` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (1 = inline execution, no threads).
  [[nodiscard]] std::size_t size() const { return jobs_; }

  /// Index of the pool worker running the calling thread; 0 on any thread
  /// that is not a pool worker (including the inline jobs == 1 mode).
  [[nodiscard]] static std::size_t current_worker();

  /// Runs fn(0..count-1), distributing indices over the workers, and blocks
  /// until all complete. Exceptions thrown by tasks are captured; the one
  /// for the smallest index is rethrown (deterministic regardless of
  /// scheduling). Reentrant calls (from inside a task) are not supported.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Fire-and-forget: enqueues one task (round-robin over the workers) and
  /// returns immediately; jobs == 1 runs it inline. The task must not throw
  /// (uncaught exceptions terminate) and the caller tracks its own
  /// completion — this is the request-multiplexing entry the daemon uses,
  /// where each task answers its own client. Do not mix with a concurrent
  /// parallel_for on the same pool: both count into `pending_`, so
  /// parallel_for's drain would wait for submitted tasks too.
  void submit(std::function<void()> fn);

 private:
  struct Task {
    std::function<void()> run;
  };

  void worker_main(std::size_t me);
  [[nodiscard]] bool try_pop(std::size_t me, Task& out);
  [[nodiscard]] bool try_steal(std::size_t me, Task& out);

  std::size_t jobs_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mu_;                    // guards queues_, pending_, stop_
  std::condition_variable work_cv_;  // workers wait for tasks
  std::condition_variable done_cv_;  // parallel_for waits for drain
  std::vector<std::deque<Task>> queues_;  // one per worker
  std::size_t pending_ = 0;               // submitted but not finished
  std::size_t next_queue_ = 0;            // submit()'s round-robin cursor
  bool stop_ = false;
};

}  // namespace ara::serve
