#include "serve/threadpool.hpp"

#include <algorithm>
#include <utility>

namespace ara::serve {

namespace {
thread_local std::size_t t_worker = 0;
}  // namespace

std::size_t ThreadPool::current_worker() { return t_worker; }

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs == 0) jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  jobs_ = jobs;
  if (jobs_ == 1) return;  // inline mode: no threads, no queues
  queues_.resize(jobs_);
  threads_.reserve(jobs_);
  for (std::size_t i = 0; i < jobs_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (jobs_ == 1) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::try_pop(std::size_t me, Task& out) {
  // Caller holds mu_. Own queue: LIFO back.
  std::deque<Task>& q = queues_[me];
  if (q.empty()) return false;
  out = std::move(q.back());
  q.pop_back();
  return true;
}

bool ThreadPool::try_steal(std::size_t me, Task& out) {
  // Caller holds mu_. Victims' queues: FIFO front, scanning from the next
  // worker round-robin so steals spread out instead of piling on worker 0.
  for (std::size_t off = 1; off < jobs_; ++off) {
    std::deque<Task>& q = queues_[(me + off) % jobs_];
    if (q.empty()) continue;
    out = std::move(q.front());
    q.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::worker_main(std::size_t me) {
  t_worker = me;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (try_pop(me, task) || try_steal(me, task)) {
      lock.unlock();
      task.run();
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  if (jobs_ == 1) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // shutting down: drop, the caller is going away too
    queues_[next_queue_ % jobs_].push_back(Task{std::move(fn)});
    ++next_queue_;
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs_ == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Capture at most one exception per index; rethrow the smallest index's
  // so failure reporting does not depend on thread scheduling.
  std::mutex err_mu;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < count; ++i) {
      queues_[i % jobs_].push_back(Task{[&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> elock(err_mu);
          errors.emplace_back(i, std::current_exception());
        }
      }});
    }
    pending_ += count;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  if (!errors.empty()) {
    auto first = std::min_element(
        errors.begin(), errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(first->second);
  }
}

}  // namespace ara::serve
