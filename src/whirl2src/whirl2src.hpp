// WHIRL -> source back-translation. OpenUH "can be treated as a source to
// source compiler ... very high and high level WHIRL can be translated back
// to C and Fortran source codes via WHIRL2c, WHIRL2f and WHIRL2f90 tools.
// However, this could incur minor loss of semantics." (§IV-A). Dragon's
// source pane uses this when original sources are unavailable, and the tests
// use it to check that lowering round-trips array subscripts (row-major
// zero-based WHIRL back to source-order, source-based indices).
#pragma once

#include <string>

#include "ir/program.hpp"

namespace ara::whirl2src {

/// Emits one procedure as C-like source.
[[nodiscard]] std::string whirl2c(const ir::ProcedureIR& proc, const ir::Program& program);

/// Emits one procedure as Fortran-like source.
[[nodiscard]] std::string whirl2f(const ir::ProcedureIR& proc, const ir::Program& program);

/// Emits the entire program in the given language.
[[nodiscard]] std::string emit_program(const ir::Program& program, Language lang);

}  // namespace ara::whirl2src
