#include "whirl2src/whirl2src.hpp"

#include <algorithm>
#include <sstream>

#include "ir/address.hpp"

namespace ara::whirl2src {

namespace {

using ir::Mtype;
using ir::Opr;
using ir::WN;

const char* c_op(Opr op) {
  switch (op) {
    case Opr::Add:
      return "+";
    case Opr::Sub:
      return "-";
    case Opr::Mpy:
      return "*";
    case Opr::Div:
      return "/";
    case Opr::Mod:
      return "%";
    case Opr::Eq:
      return "==";
    case Opr::Ne:
      return "!=";
    case Opr::Lt:
      return "<";
    case Opr::Gt:
      return ">";
    case Opr::Le:
      return "<=";
    case Opr::Ge:
      return ">=";
    case Opr::Land:
      return "&&";
    case Opr::Lior:
      return "||";
    default:
      return "?";
  }
}

const char* f_op(Opr op) {
  switch (op) {
    case Opr::Eq:
      return ".eq.";
    case Opr::Ne:
      return ".ne.";
    case Opr::Lt:
      return ".lt.";
    case Opr::Gt:
      return ".gt.";
    case Opr::Le:
      return ".le.";
    case Opr::Ge:
      return ".ge.";
    case Opr::Land:
      return ".and.";
    case Opr::Lior:
      return ".or.";
    default:
      return c_op(op);
  }
}

class Emitter {
 public:
  Emitter(const ir::Program& program, Language lang) : program_(program), lang_(lang) {}

  std::string emit_proc(const ir::ProcedureIR& proc) {
    os_.str("");
    const ir::St& st = program_.symtab.st(proc.proc_st);
    if (lang_ == Language::C) {
      os_ << "void " << st.name << "(";
      emit_formals(proc, /*c=*/true);
      os_ << ") {\n";
      emit_local_decls(proc, /*c=*/true);
      emit_block(*body_of(proc), 1);
      os_ << "}\n";
    } else {
      os_ << "subroutine " << st.name << "(";
      emit_formals(proc, /*c=*/false);
      os_ << ")\n";
      emit_local_decls(proc, /*c=*/false);
      emit_block(*body_of(proc), 1);
      os_ << "end subroutine " << st.name << "\n";
    }
    return os_.str();
  }

 private:
  static const WN* body_of(const ir::ProcedureIR& proc) {
    return proc.tree->kid(proc.tree->kid_count() - 1);
  }

  void indent(int depth) { os_ << std::string(static_cast<std::size_t>(depth) * 2, ' '); }

  void emit_formals(const ir::ProcedureIR& proc, bool c) {
    bool first = true;
    for (std::size_t i = 0; i + 1 < proc.tree->kid_count(); ++i) {
      const WN* idname = proc.tree->kid(i);
      const ir::St& st = program_.symtab.st(idname->st_idx());
      const ir::Ty& ty = program_.symtab.ty(st.ty);
      if (!first) os_ << ", ";
      first = false;
      if (c) {
        os_ << ir::mtype_source_name(ty.mtype) << ' ' << st.name;
        for (const ir::ArrayDim& d : ty.dims) {
          os_ << '[';
          if (const auto e = d.extent()) os_ << *e;
          os_ << ']';
        }
      } else {
        os_ << st.name;
      }
    }
  }

  void declare_fortran(const ir::St& st, const ir::Ty& ty) {
    indent(1);
    if (ty.mtype == Mtype::F8) {
      os_ << "double precision";
    } else if (ty.mtype == Mtype::F4) {
      os_ << "real";
    } else if (ty.mtype == Mtype::I1) {
      os_ << "character";
    } else {
      os_ << "integer";
    }
    os_ << " :: " << st.name;
    if (ty.is_array()) {
      os_ << '(';
      for (std::size_t i = 0; i < ty.dims.size(); ++i) {
        if (i != 0) os_ << ", ";
        const ir::ArrayDim& d = ty.dims[i];
        if (d.lb.has_value() && *d.lb != 1) os_ << *d.lb << ':';
        if (d.ub.has_value()) {
          os_ << *d.ub;
        } else if (!d.ub_sym.empty()) {
          os_ << d.ub_sym;
        } else {
          os_ << '*';
        }
      }
      os_ << ')';
      if (ty.coarray) os_ << " [*]";
    }
    os_ << '\n';
  }

  void emit_local_decls(const ir::ProcedureIR& proc, bool c) {
    for (ir::StIdx idx : program_.symtab.all_sts()) {
      const ir::St& st = program_.symtab.st(idx);
      if (st.owner_proc != proc.proc_st) continue;
      if (st.sclass == ir::StClass::Proc) continue;
      const ir::Ty& ty = program_.symtab.ty(st.ty);
      if (c) {
        if (st.storage == ir::StStorage::Formal) continue;  // in the signature
        indent(1);
        os_ << ir::mtype_source_name(ty.mtype) << ' ' << st.name;
        for (const ir::ArrayDim& d : ty.dims) {
          os_ << '[' << d.extent().value_or(0) << ']';
        }
        os_ << ";\n";
      } else {
        declare_fortran(st, ty);
      }
    }
  }

  void emit_block(const WN& block, int depth) {
    for (std::size_t i = 0; i < block.kid_count(); ++i) emit_stmt(*block.kid(i), depth);
  }

  void emit_stmt(const WN& wn, int depth) {
    const bool c = lang_ == Language::C;
    switch (wn.opr()) {
      case Opr::Stid:
        indent(depth);
        os_ << program_.symtab.st(wn.st_idx()).name << " = ";
        emit_expr(*wn.kid(0));
        os_ << (c ? ";\n" : "\n");
        return;
      case Opr::Istore:
        indent(depth);
        emit_expr(*wn.kid(1));  // ARRAY prints as a reference
        os_ << " = ";
        emit_expr(*wn.kid(0));
        os_ << (c ? ";\n" : "\n");
        return;
      case Opr::DoLoop: {
        const std::string var = program_.symtab.st(wn.loop_idname()->st_idx()).name;
        indent(depth);
        if (c) {
          os_ << "for (" << var << " = ";
          emit_expr(*wn.loop_init());
          os_ << "; " << var << " <= ";
          emit_expr(*wn.loop_end());
          os_ << "; " << var << " += ";
          emit_expr(*wn.loop_step());
          os_ << ") {\n";
          emit_block(*wn.loop_body(), depth + 1);
          indent(depth);
          os_ << "}\n";
        } else {
          os_ << "do " << var << " = ";
          emit_expr(*wn.loop_init());
          os_ << ", ";
          emit_expr(*wn.loop_end());
          const auto step = ir::eval_const(*wn.loop_step());
          if (!step || *step != 1) {
            os_ << ", ";
            emit_expr(*wn.loop_step());
          }
          os_ << '\n';
          emit_block(*wn.loop_body(), depth + 1);
          indent(depth);
          os_ << "end do\n";
        }
        return;
      }
      case Opr::If:
        indent(depth);
        os_ << (c ? "if (" : "if (");
        emit_expr(*wn.kid(0));
        os_ << (c ? ") {\n" : ") then\n");
        emit_block(*wn.kid(1), depth + 1);
        if (wn.kid(2)->kid_count() > 0) {
          indent(depth);
          os_ << (c ? "} else {\n" : "else\n");
          emit_block(*wn.kid(2), depth + 1);
        }
        indent(depth);
        os_ << (c ? "}\n" : "end if\n");
        return;
      case Opr::Call: {
        indent(depth);
        if (!c) os_ << "call ";
        os_ << program_.symtab.st(wn.st_idx()).name << '(';
        for (std::size_t i = 0; i < wn.kid_count(); ++i) {
          if (i != 0) os_ << ", ";
          emit_expr(*wn.kid(i)->kid(0));
        }
        os_ << (c ? ");\n" : ")\n");
        return;
      }
      case Opr::Return:
        indent(depth);
        os_ << (c ? "return;\n" : "return\n");
        return;
      case Opr::Pragma:
        indent(depth);
        os_ << (c ? "#pragma " : "!$") << wn.str_val() << '\n';
        return;
      default:
        indent(depth);
        os_ << "/* unsupported stmt " << ir::opr_name(wn.opr()) << " */\n";
        return;
    }
  }

  void emit_array_ref(const WN& arr) {
    const ir::St& st = program_.symtab.st(arr.array_base()->st_idx());
    const ir::Ty& ty = program_.symtab.ty(st.ty);
    os_ << st.name;
    const std::size_t n = arr.num_dim();
    if (lang_ == Language::C) {
      for (std::size_t i = 0; i < n; ++i) {
        os_ << '[';
        emit_expr(*arr.array_index(i));
        os_ << ']';
      }
      return;
    }
    // Fortran: undo the row-major reversal and the zero-based adjustment.
    os_ << '(';
    for (std::size_t i = 0; i < n; ++i) {
      if (i != 0) os_ << ", ";
      const std::size_t kid = ty.row_major ? i : n - 1 - i;
      const WN* index = arr.array_index(kid);
      std::int64_t lb = 1;
      if (ty.is_array() && i < ty.dims.size()) lb = ty.dims[i].lb.value_or(1);
      if (lb == 0) {
        emit_expr(*index);
      } else {
        // index + lb, folding the constant when the index itself ends in a
        // matching "- lb" (the common lowering shape).
        if (const auto v = ir::eval_const(*index)) {
          os_ << *v + lb;
        } else if (index->opr() == Opr::Sub && index->kid(1)->opr() == Opr::Intconst &&
                   index->kid(1)->const_val() == lb) {
          emit_expr(*index->kid(0));
        } else {
          emit_expr(*index);
          os_ << " + " << lb;
        }
      }
    }
    os_ << ')';
  }

  void emit_expr(const WN& wn) {
    switch (wn.opr()) {
      case Opr::Intconst:
        os_ << wn.const_val();
        return;
      case Opr::Fconst:
        os_ << wn.flt_val();
        return;
      case Opr::Ldid:
      case Opr::Lda:
        os_ << program_.symtab.st(wn.st_idx()).name;
        return;
      case Opr::Array:
        emit_array_ref(wn);
        return;
      case Opr::Coindex:
        emit_expr(*wn.kid(0));
        os_ << '[';
        emit_expr(*wn.kid(1));
        os_ << ']';
        return;
      case Opr::Iload:
        emit_expr(*wn.kid(0));
        return;
      case Opr::Neg:
        os_ << "-(";
        emit_expr(*wn.kid(0));
        os_ << ')';
        return;
      case Opr::Lnot:
        os_ << (lang_ == Language::C ? "!(" : ".not.(");
        emit_expr(*wn.kid(0));
        os_ << ')';
        return;
      case Opr::Cvt:
        emit_expr(*wn.kid(0));
        return;
      case Opr::Max:
      case Opr::Min:
        os_ << (wn.opr() == Opr::Max ? "max(" : "min(");
        emit_expr(*wn.kid(0));
        os_ << ", ";
        emit_expr(*wn.kid(1));
        os_ << ')';
        return;
      case Opr::Intrinsic: {
        os_ << wn.str_val() << '(';
        for (std::size_t i = 0; i < wn.kid_count(); ++i) {
          if (i != 0) os_ << ", ";
          emit_expr(*wn.kid(i)->kid(0));
        }
        os_ << ')';
        return;
      }
      case Opr::Parm:
        emit_expr(*wn.kid(0));
        return;
      default:
        if (ir::opr_is_binary(wn.opr())) {
          os_ << '(';
          emit_expr(*wn.kid(0));
          os_ << ' ' << (lang_ == Language::C ? c_op(wn.opr()) : f_op(wn.opr())) << ' ';
          emit_expr(*wn.kid(1));
          os_ << ')';
          return;
        }
        os_ << "/*?" << ir::opr_name(wn.opr()) << "*/";
        return;
    }
  }

  const ir::Program& program_;
  Language lang_;
  std::ostringstream os_;
};

}  // namespace

std::string whirl2c(const ir::ProcedureIR& proc, const ir::Program& program) {
  return Emitter(program, Language::C).emit_proc(proc);
}

std::string whirl2f(const ir::ProcedureIR& proc, const ir::Program& program) {
  return Emitter(program, Language::Fortran).emit_proc(proc);
}

std::string emit_program(const ir::Program& program, Language lang) {
  std::ostringstream os;
  // Globals first (C syntax only; Fortran globals live in COMMON decls that
  // the per-procedure declarations repeat).
  if (lang == Language::C) {
    for (ir::StIdx idx : program.symtab.all_sts()) {
      const ir::St& st = program.symtab.st(idx);
      if (st.sclass != ir::StClass::Var || st.storage != ir::StStorage::Global) continue;
      const ir::Ty& ty = program.symtab.ty(st.ty);
      os << ir::mtype_source_name(ty.mtype) << ' ' << st.name;
      for (const ir::ArrayDim& d : ty.dims) os << '[' << d.extent().value_or(0) << ']';
      os << ";\n";
    }
    os << '\n';
  }
  for (const ir::ProcedureIR& p : program.procedures) {
    os << (lang == Language::C ? whirl2c(p, program) : whirl2f(p, program)) << '\n';
  }
  return os.str();
}

}  // namespace ara::whirl2src
