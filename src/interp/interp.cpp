#include "interp/interp.hpp"

#include <cmath>
#include <deque>
#include <sstream>

#include "regions/convex_region.hpp"
#include "support/string_utils.hpp"

namespace ara::interp {

using ir::Opr;
using ir::StIdx;
using ir::WN;
using regions::AccessMode;

// ---------------------------------------------------------------------------
// DynamicSummary
// ---------------------------------------------------------------------------

void DynamicSummary::record(StIdx array, AccessMode mode, const regions::Point& src_indices,
                            int thread, std::uint32_t line) {
  DynEntry& e = entries_[{array, mode}];
  ++e.refs;
  e.touched.record(mode, src_indices);
  e.exact.record(mode, src_indices);
  if (line != 0) e.sites.insert(line);
  e.per_thread[thread].record(mode, src_indices);
  ++e.refs_per_thread[thread];
}

const DynEntry* DynamicSummary::entry(StIdx array, AccessMode mode) const {
  const auto it = entries_.find({array, mode});
  return it == entries_.end() ? nullptr : &it->second;
}

std::int64_t DynamicSummary::dynamic_density_pct(StIdx array, AccessMode mode,
                                                 const ir::Program& program) const {
  const DynEntry* e = entry(array, mode);
  if (e == nullptr) return 0;
  const auto bytes = program.symtab.ty(program.symtab.st(array).ty).size_bytes();
  if (!bytes || *bytes <= 0) return 0;
  return static_cast<std::int64_t>(e->refs * 100 / static_cast<std::uint64_t>(*bytes));
}

bool DynamicSummary::threads_disjoint(StIdx array, AccessMode mode) const {
  const DynEntry* e = entry(array, mode);
  if (e == nullptr || e->per_thread.size() < 2) return false;
  std::vector<const regions::Region*> secs;
  for (const auto& [tid, section] : e->per_thread) {
    const auto& sec = section.section(mode);
    if (!sec) continue;
    secs.push_back(&*sec);
  }
  for (std::size_t i = 0; i < secs.size(); ++i) {
    for (std::size_t j = i + 1; j < secs.size(); ++j) {
      if (!regions::Region::certainly_disjoint(*secs[i], *secs[j])) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

namespace {

struct Storage {
  std::vector<double> data;
};

struct Ref {
  Storage* st = nullptr;
  std::int64_t offset = 0;
};

}  // namespace

struct Interpreter::Impl {
  const ir::Program& program;
  InterpOptions opts;
  std::map<StIdx, Storage> globals;

  struct Frame {
    std::map<StIdx, Storage> locals;
    std::map<StIdx, Ref> formals;
    std::deque<Storage> temps;  // copy-in storage for expression actuals
    int loop_depth = 0;
  };
  std::deque<Frame> stack;
  std::unique_ptr<Frame> retained_root;  // kept after run() for inspection

  DynamicSummary* summary = nullptr;
  std::uint64_t steps = 0;
  bool failed = false;
  bool returning = false;
  std::string error;
  int current_thread = 0;

  explicit Impl(const ir::Program& p, InterpOptions o) : program(p), opts(o) {}

  void fail(const std::string& what) {
    if (!failed) error = what;
    failed = true;
  }

  bool budget() {
    if (++steps > opts.max_steps) {
      fail("step budget exhausted (" + std::to_string(opts.max_steps) + ")");
      return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t storage_size(const ir::Ty& ty) const {
    const auto n = ty.total_elements();
    if (n && *n > 0) return static_cast<std::size_t>(*n);
    // Variable-length arrays get a bounded arena; bounds checks catch abuse.
    return ty.is_array() ? 65536 : 1;
  }

  Ref resolve(StIdx st) {
    const ir::St& sym = program.symtab.st(st);
    if (sym.storage == ir::StStorage::Global) {
      auto [it, inserted] = globals.try_emplace(st);
      if (inserted) it->second.data.assign(storage_size(program.symtab.ty(sym.ty)), 0.0);
      return Ref{&it->second, 0};
    }
    Frame& frame = stack.back();
    if (sym.storage == ir::StStorage::Formal) {
      const auto it = frame.formals.find(st);
      if (it != frame.formals.end()) return it->second;
      // Unbound formal (direct run of a procedure with formals).
      auto [lit, inserted] = frame.locals.try_emplace(st);
      if (inserted) lit->second.data.assign(storage_size(program.symtab.ty(sym.ty)), 0.0);
      return Ref{&lit->second, 0};
    }
    auto [it, inserted] = frame.locals.try_emplace(st);
    if (inserted) it->second.data.assign(storage_size(program.symtab.ty(sym.ty)), 0.0);
    return Ref{&it->second, 0};
  }

  double load(const Ref& ref) {
    if (ref.st == nullptr || ref.offset < 0 ||
        ref.offset >= static_cast<std::int64_t>(ref.st->data.size())) {
      fail("load out of bounds");
      return 0.0;
    }
    return ref.st->data[static_cast<std::size_t>(ref.offset)];
  }

  void store(const Ref& ref, double v) {
    if (ref.st == nullptr || ref.offset < 0 ||
        ref.offset >= static_cast<std::int64_t>(ref.st->data.size())) {
      fail("store out of bounds");
      return;
    }
    ref.st->data[static_cast<std::size_t>(ref.offset)] = v;
  }

  static std::int64_t as_int(double v) { return static_cast<std::int64_t>(std::llround(v)); }

  /// Evaluates an ARRAY node to the element reference plus the source-order
  /// indices (for the dynamic recorder).
  struct ElementAddr {
    Ref ref;
    StIdx base = ir::kInvalidSt;
    regions::Point src_indices;
    std::uint32_t line = 0;  // the ARRAY node's source line (site identity)
    bool ok = false;
  };

  ElementAddr eval_array(const WN& arr) {
    ElementAddr out;
    const WN* base = arr.array_base();
    out.base = base->st_idx();
    out.line = arr.linenum().line;
    const Ref base_ref = resolve(out.base);
    const ir::Ty& ty = program.symtab.ty(program.symtab.st(out.base).ty);
    const std::size_t n = arr.num_dim();

    std::vector<std::int64_t> h(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      h[i] = as_int(eval(*arr.array_dim(i)));
      y[i] = as_int(eval(*arr.array_index(i)));
      if (failed) return out;
    }
    std::int64_t flat = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t mult = 1;
      for (std::size_t j = i + 1; j < n; ++j) mult *= h[j];
      flat += y[i] * mult;
      if (opts.check_bounds && h[i] > 0 && (y[i] < 0 || y[i] >= h[i])) {
        std::ostringstream os;
        os << "subscript out of range on '" << program.symtab.st(out.base).name << "': index "
           << (i + 1) << " is " << y[i] << ", extent " << h[i];
        fail(os.str());
        return out;
      }
    }
    out.ref = Ref{base_ref.st, base_ref.offset + flat};

    // Source-order indices with declared lower bounds restored.
    out.src_indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t kid = (!ty.is_array() || ty.row_major) ? i : n - 1 - i;
      std::int64_t lb = 0;
      if (ty.is_array() && i < ty.dims.size()) lb = ty.dims[i].lb.value_or(0);
      out.src_indices[i] = y[kid] + lb;
    }
    out.ok = true;
    return out;
  }

  void note_access(const ElementAddr& addr, AccessMode mode) {
    if (summary != nullptr && addr.ok) {
      summary->record(addr.base, mode, addr.src_indices, current_thread, addr.line);
    }
  }

  double eval_intrinsic(const WN& wn) {
    const std::string& name = wn.str_val();
    auto arg = [&](std::size_t i) { return eval(*wn.kid(i)->kid(0)); };
    if (name == "sqrt") return std::sqrt(arg(0));
    if (name == "abs") return std::fabs(arg(0));
    if (name == "exp") return std::exp(arg(0));
    if (name == "log") return std::log(arg(0));
    if (name == "sin") return std::sin(arg(0));
    if (name == "cos") return std::cos(arg(0));
    if (name == "tan") return std::tan(arg(0));
    if (name == "sign" && wn.kid_count() == 2) {
      const double a = std::fabs(arg(0));
      return arg(1) >= 0 ? a : -a;
    }
    if (name == "this_image") return 1.0;  // single-image simulation
    if (name == "num_images") return 1.0;
    fail("unsupported intrinsic '" + name + "'");
    return 0.0;
  }

  double eval(const WN& wn) {
    if (failed) return 0.0;
    switch (wn.opr()) {
      case Opr::Intconst:
        return static_cast<double>(wn.const_val());
      case Opr::Fconst:
        return wn.flt_val();
      case Opr::Ldid:
        return load(resolve(wn.st_idx()));
      case Opr::Lda:
        return 0.0;  // addresses are handled structurally
      case Opr::Iload: {
        const WN* address = wn.kid(0);
        if (address->opr() == Opr::Coindex) {
          // Single-image simulation: a remote GET reads the local copy.
          (void)eval(*address->kid(1));
          address = address->kid(0);
        }
        const ElementAddr addr = eval_array(*address);
        if (!addr.ok) return 0.0;
        note_access(addr, AccessMode::Use);
        return load(addr.ref);
      }
      case Opr::Cvt: {
        const double v = eval(*wn.kid(0));
        return ir::mtype_is_integral(wn.rtype()) ? std::trunc(v) : v;
      }
      case Opr::Neg:
        return -eval(*wn.kid(0));
      case Opr::Lnot:
        return eval(*wn.kid(0)) == 0.0 ? 1.0 : 0.0;
      case Opr::Add:
        return eval(*wn.kid(0)) + eval(*wn.kid(1));
      case Opr::Sub:
        return eval(*wn.kid(0)) - eval(*wn.kid(1));
      case Opr::Mpy:
        return eval(*wn.kid(0)) * eval(*wn.kid(1));
      case Opr::Div: {
        const double a = eval(*wn.kid(0));
        const double b = eval(*wn.kid(1));
        if (ir::mtype_is_integral(wn.rtype())) {
          if (as_int(b) == 0) {
            fail("integer division by zero");
            return 0.0;
          }
          return static_cast<double>(as_int(a) / as_int(b));
        }
        return a / b;
      }
      case Opr::Mod: {
        const std::int64_t b = as_int(eval(*wn.kid(1)));
        if (b == 0) {
          fail("modulo by zero");
          return 0.0;
        }
        return static_cast<double>(as_int(eval(*wn.kid(0))) % b);
      }
      case Opr::Max:
        return std::max(eval(*wn.kid(0)), eval(*wn.kid(1)));
      case Opr::Min:
        return std::min(eval(*wn.kid(0)), eval(*wn.kid(1)));
      case Opr::Eq:
        return eval(*wn.kid(0)) == eval(*wn.kid(1)) ? 1.0 : 0.0;
      case Opr::Ne:
        return eval(*wn.kid(0)) != eval(*wn.kid(1)) ? 1.0 : 0.0;
      case Opr::Lt:
        return eval(*wn.kid(0)) < eval(*wn.kid(1)) ? 1.0 : 0.0;
      case Opr::Gt:
        return eval(*wn.kid(0)) > eval(*wn.kid(1)) ? 1.0 : 0.0;
      case Opr::Le:
        return eval(*wn.kid(0)) <= eval(*wn.kid(1)) ? 1.0 : 0.0;
      case Opr::Ge:
        return eval(*wn.kid(0)) >= eval(*wn.kid(1)) ? 1.0 : 0.0;
      case Opr::Land:
        return (eval(*wn.kid(0)) != 0.0 && eval(*wn.kid(1)) != 0.0) ? 1.0 : 0.0;
      case Opr::Lior:
        return (eval(*wn.kid(0)) != 0.0 || eval(*wn.kid(1)) != 0.0) ? 1.0 : 0.0;
      case Opr::Intrinsic:
        return eval_intrinsic(wn);
      case Opr::Parm:
        return eval(*wn.kid(0));
      default:
        fail(std::string("cannot evaluate operator ") + std::string(ir::opr_name(wn.opr())));
        return 0.0;
    }
  }

  void exec_call(const WN& call) {
    const ir::ProcedureIR* callee = program.find_procedure(call.st_idx());
    if (callee == nullptr || !callee->tree) {
      fail("call to unknown procedure '" + program.symtab.st(call.st_idx()).name + "'");
      return;
    }
    Frame frame;
    // Bind formals positionally: FUNC_ENTRY kids 0..n-2 are IDNAMEs.
    const std::size_t nformals = callee->tree->kid_count() - 1;
    for (std::size_t i = 0; i < nformals && i < call.kid_count(); ++i) {
      const StIdx formal = callee->tree->kid(i)->st_idx();
      const WN* actual = call.kid(i)->kid(0);
      Ref bound;
      switch (actual->opr()) {
        case Opr::Lda:
        case Opr::Ldid: {
          if (actual->st_idx() != ir::kInvalidSt) {
            bound = resolve(actual->st_idx());
          }
          break;
        }
        case Opr::Array: {
          const ElementAddr addr = eval_array(*actual);
          if (!addr.ok) return;
          bound = addr.ref;
          break;
        }
        default: {
          // Expression actual: copy-in temporary.
          frame.temps.emplace_back();
          frame.temps.back().data.assign(1, eval(*actual));
          bound = Ref{&frame.temps.back(), 0};
          break;
        }
      }
      if (failed) return;
      frame.formals.emplace(formal, bound);
    }
    stack.push_back(std::move(frame));
    const bool saved_returning = returning;
    returning = false;
    exec_block(*callee->tree->kid(callee->tree->kid_count() - 1));
    returning = saved_returning;
    stack.pop_back();
  }

  void exec_stmt(const WN& wn) {
    if (failed || returning || !budget()) return;
    switch (wn.opr()) {
      case Opr::Stid: {
        const double v = eval(*wn.kid(0));
        if (failed) return;
        store(resolve(wn.st_idx()), ir::mtype_is_integral(wn.desc()) ? std::trunc(v) : v);
        return;
      }
      case Opr::Istore: {
        const double v = eval(*wn.kid(0));
        if (failed) return;
        const WN* address = wn.kid(1);
        if (address->opr() == Opr::Coindex) {
          (void)eval(*address->kid(1));
          address = address->kid(0);
        }
        const ElementAddr addr = eval_array(*address);
        if (!addr.ok) return;
        note_access(addr, AccessMode::Def);
        store(addr.ref, v);
        return;
      }
      case Opr::DoLoop: {
        const StIdx ivar = wn.loop_idname()->st_idx();
        const double init = eval(*wn.loop_init());
        const double limit = eval(*wn.loop_end());
        const double step = eval(*wn.loop_step());
        if (failed) return;
        if (step == 0.0) {
          fail("zero loop step");
          return;
        }
        Frame& frame = stack.back();
        const bool outermost = frame.loop_depth == 0;
        ++frame.loop_depth;
        const int saved_thread = current_thread;
        std::int64_t iter = 0;
        for (double i = init; step > 0 ? i <= limit : i >= limit; i += step, ++iter) {
          if (outermost && opts.virtual_threads > 1) {
            current_thread = static_cast<int>(iter % opts.virtual_threads);
          }
          store(resolve(ivar), i);
          exec_block(*wn.loop_body());
          if (failed || returning) break;
          if (!budget()) break;
        }
        current_thread = saved_thread;
        --stack.back().loop_depth;
        return;
      }
      case Opr::If: {
        const double cond = eval(*wn.kid(0));
        if (failed) return;
        exec_block(cond != 0.0 ? *wn.kid(1) : *wn.kid(2));
        return;
      }
      case Opr::Call:
        exec_call(wn);
        return;
      case Opr::Return:
        returning = true;
        return;
      case Opr::Pragma:
        return;  // directives are advice, not semantics
      default:
        fail(std::string("cannot execute operator ") + std::string(ir::opr_name(wn.opr())));
        return;
    }
  }

  void exec_block(const WN& block) {
    for (std::size_t i = 0; i < block.kid_count(); ++i) {
      if (failed || returning) return;
      exec_stmt(*block.kid(i));
    }
  }
};

Interpreter::Interpreter(const ir::Program& program, InterpOptions options)
    : impl_(std::make_unique<Impl>(program, options)) {}

Interpreter::~Interpreter() = default;

InterpResult Interpreter::run(std::string_view proc_name, DynamicSummary* summary) {
  InterpResult result;
  const ir::ProcedureIR* proc = impl_->program.find_procedure(proc_name);
  if (proc == nullptr || !proc->tree) {
    result.error = "no procedure '" + std::string(proc_name) + "'";
    return result;
  }
  impl_->summary = summary;
  impl_->failed = false;
  impl_->returning = false;
  impl_->steps = 0;
  impl_->error.clear();
  impl_->stack.clear();
  impl_->stack.emplace_back();
  impl_->exec_block(*proc->tree->kid(proc->tree->kid_count() - 1));
  result.steps = impl_->steps;
  result.ok = !impl_->failed;
  result.error = impl_->error;
  // Retain the root frame so tests can inspect entry-procedure locals.
  impl_->retained_root = std::make_unique<Impl::Frame>(std::move(impl_->stack.back()));
  impl_->stack.clear();
  return result;
}

std::optional<double> Interpreter::scalar_value(std::string_view name) const {
  for (ir::StIdx idx : impl_->program.symtab.all_sts()) {
    const ir::St& st = impl_->program.symtab.st(idx);
    if (st.sclass == ir::StClass::Proc || !iequals(st.name, name)) continue;
    if (st.storage == ir::StStorage::Global) {
      const auto it = impl_->globals.find(idx);
      if (it != impl_->globals.end() && !it->second.data.empty()) return it->second.data[0];
    }
    if (impl_->retained_root) {
      const auto it = impl_->retained_root->locals.find(idx);
      if (it != impl_->retained_root->locals.end() && !it->second.data.empty()) {
        return it->second.data[0];
      }
    }
  }
  return std::nullopt;
}

std::optional<double> Interpreter::array_element(std::string_view name,
                                                 const std::vector<std::int64_t>& idx) const {
  for (ir::StIdx st_idx : impl_->program.symtab.all_sts()) {
    const ir::St& st = impl_->program.symtab.st(st_idx);
    if (st.sclass == ir::StClass::Proc || !iequals(st.name, name)) continue;
    const ir::Ty& ty = impl_->program.symtab.ty(st.ty);
    if (!ty.is_array() || ty.rank() != idx.size()) continue;

    const Storage* storage = nullptr;
    if (const auto git = impl_->globals.find(st_idx); git != impl_->globals.end()) {
      storage = &git->second;
    } else if (impl_->retained_root) {
      const auto lit = impl_->retained_root->locals.find(st_idx);
      if (lit != impl_->retained_root->locals.end()) storage = &lit->second;
    }
    if (storage == nullptr) continue;

    // Zero-base, reorder to storage (row-major kid) order, flatten.
    const std::size_t n = ty.rank();
    std::vector<std::int64_t> y(n), h(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t src = ty.row_major ? i : n - 1 - i;
      y[i] = idx[src] - ty.dims[src].lb.value_or(0);
      h[i] = ty.dims[src].extent().value_or(0);
    }
    std::int64_t flat = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t mult = 1;
      for (std::size_t j = i + 1; j < n; ++j) mult *= h[j];
      flat += y[i] * mult;
    }
    if (flat < 0 || flat >= static_cast<std::int64_t>(storage->data.size())) return std::nullopt;
    return storage->data[static_cast<std::size_t>(flat)];
  }
  return std::nullopt;
}

}  // namespace ara::interp
