// A WHIRL tree interpreter with dynamic access recording — the paper's §VI
// future work: "enhancing our tool and OpenUH to provide dynamic array
// region information, in order to better understand the actual array access
// patterns on an OpenMP thread basis. ... We will record the information
// necessary to represent an accessed region including the thread which has
// accessed it."
//
// The interpreter executes the lowered program directly (values are doubles;
// subscripts and loop counters round exactly for the integer ranges real
// programs use), records every array element touch per access mode and per
// *virtual thread* (iterations of each outermost loop are attributed
// round-robin across `virtual_threads`, modelling a static OpenMP
// schedule), and enforces bounds and step budgets so runaway or out-of-range
// programs fail loudly instead of corrupting the measurement.
//
// The dynamic summary is also the oracle for the static analysis: every
// dynamically touched element must lie inside some statically reported
// region of the same (array, mode) — the over-approximation property the
// integration tests check.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "regions/methods.hpp"

namespace ara::interp {

/// Per-(array, mode) dynamic access summary. `touched` is the widened
/// regular-section view (cheap, used for display and per-thread
/// disjointness); `exact` is the reference-list view (Fig 2's most accurate
/// method) holding precisely the touched elements — the oracle the property
/// tests compare the static analysis against.
struct DynEntry {
  std::uint64_t refs = 0;                       // element touches
  regions::RegularSection touched;              // widened over all touches
  regions::ReferenceList exact;                 // exact touched-element set
  std::set<std::uint32_t> sites;                // source lines that touched it
  std::map<int, regions::RegularSection> per_thread;
  std::map<int, std::uint64_t> refs_per_thread;

  /// Distinct syntactic access sites observed at runtime. The differential
  /// harness checks static References >= this (every executed reference has
  /// a syntactic site the static analysis must have summarized).
  [[nodiscard]] std::uint64_t distinct_sites() const { return sites.size(); }
};

class DynamicSummary {
 public:
  void record(ir::StIdx array, regions::AccessMode mode, const regions::Point& src_indices,
              int thread, std::uint32_t line = 0);

  [[nodiscard]] const std::map<std::pair<ir::StIdx, regions::AccessMode>, DynEntry>& entries()
      const {
    return entries_;
  }
  [[nodiscard]] const DynEntry* entry(ir::StIdx array, regions::AccessMode mode) const;

  /// Dynamic access density: element touches per byte (×100, truncated),
  /// the runtime analogue of the paper's AD column.
  [[nodiscard]] std::int64_t dynamic_density_pct(ir::StIdx array, regions::AccessMode mode,
                                                 const ir::Program& program) const;

  /// True when threads touch pairwise-disjoint regions of `array` under
  /// `mode` — the privatization signal §VI aims at ("this feature may
  /// improve data privatization in OpenMP codes").
  [[nodiscard]] bool threads_disjoint(ir::StIdx array, regions::AccessMode mode) const;

 private:
  std::map<std::pair<ir::StIdx, regions::AccessMode>, DynEntry> entries_;
};

struct InterpOptions {
  std::uint64_t max_steps = 100'000'000;  // statement budget
  int virtual_threads = 1;                // OpenMP-style round-robin attribution
  bool check_bounds = true;               // fail on out-of-range subscripts
};

struct InterpResult {
  bool ok = false;
  std::string error;       // set when !ok
  std::uint64_t steps = 0; // statements executed
};

class Interpreter {
 public:
  Interpreter(const ir::Program& program, InterpOptions options = {});
  ~Interpreter();

  /// Executes the named procedure (no arguments; it must have no formals).
  InterpResult run(std::string_view proc_name, DynamicSummary* summary = nullptr);

  /// Value of a global/last-frame scalar after run(); nullopt if unknown.
  [[nodiscard]] std::optional<double> scalar_value(std::string_view name) const;

  /// Element of a global array (source-order 1-based-or-declared indices).
  [[nodiscard]] std::optional<double> array_element(std::string_view name,
                                                    const std::vector<std::int64_t>& idx) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ara::interp
