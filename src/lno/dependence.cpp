#include "lno/dependence.hpp"

#include <map>
#include <set>

#include "ipa/wn_affine.hpp"
#include "serve/threadpool.hpp"
#include "support/string_utils.hpp"

namespace ara::lno {

using ipa::wn_to_affine;
using ir::Opr;
using ir::StIdx;
using ir::WN;
using regions::Constraint;
using regions::LinExpr;
using regions::LinSystem;
using regions::make_ge;
using regions::make_le;

std::string_view to_string(LoopVerdict v) {
  switch (v) {
    case LoopVerdict::Parallelizable:
      return "PARALLELIZABLE";
    case LoopVerdict::ArrayDependence:
      return "ARRAY-DEPENDENCE";
    case LoopVerdict::ScalarDependence:
      return "SCALAR-DEPENDENCE";
    case LoopVerdict::CallInLoop:
      return "CALL-IN-LOOP";
    case LoopVerdict::NotAnalyzable:
      return "NOT-ANALYZABLE";
  }
  return "?";
}

namespace {

struct InnerLoop {
  std::string var;
  LinExpr lo;
  LinExpr hi;
};

struct RefInfo {
  StIdx array = ir::kInvalidSt;
  bool is_def = false;
  bool messy = false;
  std::uint32_t line = 0;          // reference's source line (for citations)
  std::vector<LinExpr> subs;       // source-order affine subscripts
  std::vector<InnerLoop> context;  // inner loops enclosing this reference
};

struct BodyScan {
  std::vector<RefInfo> refs;
  bool has_call = false;
  bool non_affine_inner = false;
  // Scalars: first body event and whether any DEF exists.
  std::map<StIdx, bool> scalar_first_is_def;
  std::set<StIdx> scalar_defs;
};

class Scanner {
 public:
  Scanner(const ir::Program& program, const std::string& outer_var)
      : program_(program), outer_var_(outer_var) {}

  BodyScan scan(const WN& body) {
    visit_block(body);
    return std::move(out_);
  }

 private:
  void note_scalar(StIdx st, bool is_def) {
    const ir::St& sym = program_.symtab.st(st);
    if (sym.sclass == ir::StClass::Proc) return;
    if (program_.symtab.ty(sym.ty).is_array()) return;
    const std::string name = to_lower(sym.name);
    if (name == outer_var_) return;
    for (const InnerLoop& il : inner_) {
      if (il.var == name) return;  // loop indices are private by construction
    }
    out_.scalar_first_is_def.try_emplace(st, is_def);
    if (is_def) out_.scalar_defs.insert(st);
  }

  void record_array(const WN& arr, bool is_def) {
    RefInfo info;
    info.array = arr.array_base()->st_idx();
    info.is_def = is_def;
    info.line = arr.linenum().line;
    info.context = inner_;
    const ir::Ty& ty = program_.symtab.ty(program_.symtab.st(info.array).ty);
    const std::size_t n = arr.num_dim();
    for (std::size_t i = 0; i < n; ++i) {
      // Source order (row-major kid order reversed for Fortran); the lower
      // bound shift cancels between the two instances, so the zero-based
      // form is fine for equality tests.
      const std::size_t kid = (!ty.is_array() || ty.row_major) ? i : n - 1 - i;
      const auto e = wn_to_affine(*arr.array_index(kid), program_.symtab);
      if (!e) {
        info.messy = true;
        break;
      }
      info.subs.push_back(*e);
    }
    out_.refs.push_back(std::move(info));
    for (std::size_t i = 0; i < n; ++i) visit_expr(*arr.array_index(i));
  }

  void visit_expr(const WN& wn) {
    switch (wn.opr()) {
      case Opr::Ldid:
        note_scalar(wn.st_idx(), /*is_def=*/false);
        return;
      case Opr::Iload:
        record_array(*wn.kid(0), /*is_def=*/false);
        return;
      case Opr::Array:
        record_array(wn, /*is_def=*/false);
        return;
      default:
        for (std::size_t i = 0; i < wn.kid_count(); ++i) visit_expr(*wn.kid(i));
        return;
    }
  }

  void visit_stmt(const WN& wn) {
    switch (wn.opr()) {
      case Opr::Stid:
        visit_expr(*wn.kid(0));  // rhs reads happen before the write
        note_scalar(wn.st_idx(), /*is_def=*/true);
        return;
      case Opr::Istore:
        visit_expr(*wn.kid(0));
        record_array(*wn.kid(1), /*is_def=*/true);
        return;
      case Opr::DoLoop: {
        const auto lo = wn_to_affine(*wn.loop_init(), program_.symtab);
        const auto hi = wn_to_affine(*wn.loop_end(), program_.symtab);
        visit_expr(*wn.loop_init());
        visit_expr(*wn.loop_end());
        visit_expr(*wn.loop_step());
        if (!lo || !hi) out_.non_affine_inner = true;
        inner_.push_back(InnerLoop{
            to_lower(program_.symtab.st(wn.loop_idname()->st_idx()).name),
            lo.value_or(LinExpr()), hi.value_or(LinExpr())});
        visit_block(*wn.loop_body());
        inner_.pop_back();
        return;
      }
      case Opr::If:
        visit_expr(*wn.kid(0));
        visit_block(*wn.kid(1));
        visit_block(*wn.kid(2));
        return;
      case Opr::Call:
        out_.has_call = true;
        for (std::size_t i = 0; i < wn.kid_count(); ++i) visit_expr(*wn.kid(i));
        return;
      default:
        return;
    }
  }

  void visit_block(const WN& block) {
    for (std::size_t i = 0; i < block.kid_count(); ++i) visit_stmt(*block.kid(i));
  }

  const ir::Program& program_;
  std::string outer_var_;
  std::vector<InnerLoop> inner_;
  BodyScan out_;
};

/// Renames every loop-owned variable (the outer index + the reference's
/// inner indices) with an instance suffix, leaving free parameters shared.
LinExpr rename_instance(const LinExpr& e, const std::string& outer,
                        const std::vector<InnerLoop>& inner, const char* suffix) {
  LinExpr out = e;
  auto rename = [&](const std::string& name) {
    if (out.coef(name) != 0) {
      out = out.substituted(name, LinExpr::var(name + suffix));
    }
  };
  rename(outer);
  for (const InnerLoop& il : inner) rename(il.var);
  return out;
}

/// Adds one instance's loop-bound constraints (outer + inner, renamed).
void add_instance_bounds(LinSystem& sys, const std::string& outer, const LinExpr& lo,
                         const LinExpr& hi, const std::vector<InnerLoop>& inner,
                         const char* suffix) {
  const LinExpr iv = LinExpr::var(outer + suffix);
  sys.add(make_ge(iv, rename_instance(lo, outer, inner, suffix)));
  sys.add(make_le(iv, rename_instance(hi, outer, inner, suffix)));
  for (const InnerLoop& il : inner) {
    const LinExpr v = LinExpr::var(il.var + suffix);
    sys.add(make_ge(v, rename_instance(il.lo, outer, inner, suffix)));
    sys.add(make_le(v, rename_instance(il.hi, outer, inner, suffix)));
  }
}

/// True when an instance of `a` and a *later-iteration* instance of `b` may
/// address the same element (one direction of the dependence test).
bool conflict_ordered(const RefInfo& a, const RefInfo& b, const std::string& outer,
                      const LinExpr& lo, const LinExpr& hi) {
  LinSystem sys;
  for (std::size_t d = 0; d < a.subs.size(); ++d) {
    const LinExpr ea = rename_instance(a.subs[d], outer, a.context, "!1");
    const LinExpr eb = rename_instance(b.subs[d], outer, b.context, "!2");
    sys.add(Constraint{ea - eb, Constraint::Rel::Eq0});
  }
  add_instance_bounds(sys, outer, lo, hi, a.context, "!1");
  add_instance_bounds(sys, outer, lo, hi, b.context, "!2");
  // Distinct iterations of the analyzed loop: i1 <= i2 - 1.
  sys.add(make_le(LinExpr::var(outer + "!1") + LinExpr(1), LinExpr::var(outer + "!2")));
  return sys.feasible();
}

/// True when instances of `a` and `b` in two *different* iterations may
/// address the same element. Both orders must be checked: a flow dependence
/// places the DEF in the earlier iteration, an anti dependence in the later
/// one.
bool may_conflict(const RefInfo& a, const RefInfo& b, const std::string& outer,
                  const LinExpr& lo, const LinExpr& hi) {
  if (a.array != b.array) return false;
  if (a.messy || b.messy) return true;  // conservatively dependent
  if (a.subs.size() != b.subs.size()) return true;
  return conflict_ordered(a, b, outer, lo, hi) || conflict_ordered(b, a, outer, lo, hi);
}

}  // namespace

LoopAnalysis analyze_loop(const WN& loop, const ipa::CGNode& node, const ir::Program& program) {
  LoopAnalysis out;
  out.proc = program.symtab.st(node.proc_st).name;
  out.line = loop.linenum().line;
  out.index_var = to_lower(program.symtab.st(loop.loop_idname()->st_idx()).name);

  const auto lo = wn_to_affine(*loop.loop_init(), program.symtab);
  const auto hi = wn_to_affine(*loop.loop_end(), program.symtab);
  if (!lo || !hi) {
    out.verdict = LoopVerdict::NotAnalyzable;
    out.detail = "non-affine loop bounds";
    return out;
  }

  Scanner scanner(program, out.index_var);
  const BodyScan scan = scanner.scan(*loop.loop_body());

  if (scan.has_call) {
    // The paper's APO restriction; the Fig 1 interprocedural advisor is the
    // tool's answer to this case.
    out.verdict = LoopVerdict::CallInLoop;
    out.detail = "function calls inside loops cannot be handled (use the "
                 "interprocedural region advisor)";
    return out;
  }
  if (scan.non_affine_inner) {
    out.verdict = LoopVerdict::NotAnalyzable;
    out.detail = "non-affine inner loop bounds";
    return out;
  }
  for (const auto& [st, first_is_def] : scan.scalar_first_is_def) {
    if (!first_is_def && scan.scalar_defs.count(st) != 0) {
      out.verdict = LoopVerdict::ScalarDependence;
      out.detail = "scalar '" + program.symtab.st(st).name +
                   "' is read before written in the iteration (reduction?)";
      return out;
    }
  }
  for (const RefInfo& def : scan.refs) {
    if (!def.is_def) continue;
    for (const RefInfo& other : scan.refs) {
      if (may_conflict(def, other, out.index_var, *lo, *hi)) {
        out.verdict = LoopVerdict::ArrayDependence;
        out.detail = "array '" + program.symtab.st(def.array).name +
                     "' may be touched by two different iterations";
        out.dep_array = program.symtab.st(def.array).name;
        out.dep_line_a = def.line;
        out.dep_line_b = other.line;
        return out;
      }
    }
  }
  out.verdict = LoopVerdict::Parallelizable;
  const Language lang = program.sources.language(node.proc->file);
  out.directive = lang == Language::Fortran ? "!$omp parallel do" : "#pragma omp parallel for";
  return out;
}

std::vector<LoopAnalysis> find_parallel_loops(const ir::Program& program,
                                              const ipa::CallGraph& cg, std::size_t jobs) {
  // Discovery is cheap and stays serial so the loop order (and therefore the
  // report order) never depends on scheduling; only the per-loop dependence
  // analysis — where all the Fourier–Motzkin time goes — fans out.
  std::vector<std::pair<const WN*, const ipa::CGNode*>> loops;
  for (std::uint32_t n = 0; n < cg.size(); ++n) {
    const ipa::CGNode& node = cg.node(n);
    if (!node.proc->tree) continue;
    node.proc->tree->walk([&](const WN& wn) {
      if (wn.opr() != Opr::DoLoop) return true;
      loops.emplace_back(&wn, &node);
      return false;  // outermost loops only
    });
  }
  std::vector<LoopAnalysis> out(loops.size());
  if (jobs == 1 || loops.size() < 2) {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      out[i] = analyze_loop(*loops[i].first, *loops[i].second, program);
    }
    return out;
  }
  serve::ThreadPool pool(jobs);
  pool.parallel_for(loops.size(), [&](std::size_t i) {
    out[i] = analyze_loop(*loops[i].first, *loops[i].second, program);
  });
  return out;
}

}  // namespace ara::lno
