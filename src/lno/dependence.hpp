// Loop-carried dependence testing — the LNO-side consumer of region
// analysis ("array region analysis ... mainly supports the transformations
// done in latter phases of optimizations, such as data dependencies analysis
// that happens in the Loop Nest Optimizer", §IV-A) and the substrate for
// auto-parallelization candidates (§I, §IV-A's APO module).
//
// The test is exact for affine subscripts: a DO loop over i carries a
// dependence on array A iff there exist two distinct iterations i1 < i2 and
// inner-iteration vectors such that some DEF instance at i1 and some access
// instance at i2 (or vice versa) address the same element. That is a linear
// system — subscript equalities per dimension, loop bounds for both
// instances (inner variables renamed apart), and i1 <= i2 - 1 — decided by
// Fourier–Motzkin feasibility. Rational feasibility makes the test
// conservative in exactly the safe direction: "no dependence" is a proof.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipa/callgraph.hpp"
#include "regions/linsys.hpp"

namespace ara::lno {

enum class LoopVerdict : std::uint8_t {
  Parallelizable,     // no carried dependence found
  ArrayDependence,    // two instances may touch the same element
  ScalarDependence,   // a scalar is read before written within an iteration
  CallInLoop,         // the paper's APO restriction: "function calls inside
                      // loops can not be handled by this module"
  NotAnalyzable,      // messy subscripts / non-affine bounds
};

[[nodiscard]] std::string_view to_string(LoopVerdict v);

struct LoopAnalysis {
  std::string proc;
  std::uint32_t line = 0;        // loop header line
  std::string index_var;
  LoopVerdict verdict = LoopVerdict::NotAnalyzable;
  std::string detail;            // offending array/scalar or reason
  std::string directive;        // "!$omp parallel do" when parallelizable
  // Blocking dependence pair (ArrayDependence only): the DEF reference and
  // the conflicting reference that keep the loop serial, cited by source
  // line in --explain / provenance output.
  std::string dep_array;
  std::uint32_t dep_line_a = 0;
  std::uint32_t dep_line_b = 0;
};

/// Analyzes one DO_LOOP node (must belong to `node`'s procedure).
[[nodiscard]] LoopAnalysis analyze_loop(const ir::WN& loop, const ipa::CGNode& node,
                                        const ir::Program& program);

/// Analyzes every outermost loop of every procedure. Each loop's dependence
/// systems are independent, so with `jobs` > 1 the Fourier–Motzkin work fans
/// out over a serve::ThreadPool; results land in a pre-sized slot per loop,
/// so the output vector — and every byte derived from it — is identical for
/// every jobs count. `jobs` == 1 (the default) runs inline with no pool.
[[nodiscard]] std::vector<LoopAnalysis> find_parallel_loops(const ir::Program& program,
                                                            const ipa::CallGraph& cg,
                                                            std::size_t jobs = 1);

}  // namespace ara::lno
