// A Dragon session: the programmatic equivalent of "invoke our Dragon tool
// and load the .dgn project" (§V-B step 3). Loads the .dgn/.rgn pair either
// from disk or from in-memory analysis output and exposes the GUI's views:
// the procedure tree, the array analysis graph, the call graph and find.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "dragon/table.hpp"
#include "rgn/dgn.hpp"

namespace ara::dragon {

class Session {
 public:
  /// Loads <stem>.dgn and <stem>.rgn from disk. Returns nullopt (with
  /// `error` set) on parse failure.
  [[nodiscard]] static std::optional<Session> load(const std::filesystem::path& dgn_path,
                                                   std::string* error = nullptr);

  /// Builds a session directly from analysis output.
  Session(rgn::DgnProject project, std::vector<rgn::RegionRow> rows);

  [[nodiscard]] const rgn::DgnProject& project() const { return project_; }
  [[nodiscard]] const ArrayTable& table() const { return table_; }

  /// Procedure list as the left pane shows it: "@" then the procedures.
  [[nodiscard]] std::vector<std::string> procedure_pane() const;

  /// The Fig 11 call-graph DOT.
  [[nodiscard]] std::string callgraph_dot() const;

  /// Number of procedures (Fig 11 reports "the LU benchmark has 24
  /// procedures" at the bottom of the window).
  [[nodiscard]] std::size_t procedure_count() const { return project_.procedures.size(); }

 private:
  rgn::DgnProject project_;
  ArrayTable table_;
};

}  // namespace ara::dragon
