// Optimization advisors: the automated form of the manual workflows the
// paper's case studies walk through. Each advisor consumes the analysis
// result and proposes concrete source-level actions:
//
//   * advise_resize        — §V-A: "the user can redefine array aarr to be
//                            (int aarr[8]) instead of (int aarr[20]) since
//                            the remaining elements have not been used
//                            anywhere in the program".
//   * advise_fusion        — Fig 13: two adjacent loops read the same XCR
//                            region with no dependence; merge them and insert
//                            a single `!$omp parallel do`.
//   * advise_offload       — Fig 14 / Table III/IV: generate the sub-array
//                            `copyin`/`copyout` directive covering exactly
//                            the accessed portions, with a cost-model
//                            speedup estimate.
//   * advise_parallel_calls— Fig 1: calls inside a loop whose interprocedural
//                            DEF/USE regions are provably disjoint "can
//                            concurrently and safely be parallelized".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/transfer_model.hpp"
#include "ipa/analyzer.hpp"

namespace ara::dragon {

struct ResizeAdvice {
  std::string array;
  bool unused = false;                     // never accessed at all
  std::vector<std::int64_t> declared;      // extents, source order
  std::vector<std::int64_t> suggested;     // shrunk extents, source order
  std::int64_t saved_bytes = 0;
  std::string message;
};

[[nodiscard]] std::vector<ResizeAdvice> advise_resize(const ir::Program& program,
                                                      const ipa::AnalysisResult& result);

struct FusionAdvice {
  std::string proc;
  std::uint32_t first_loop_line = 0;
  std::uint32_t second_loop_line = 0;
  std::vector<std::string> shared_arrays;  // arrays re-read across the loops
  std::int64_t refetched_bytes = 0;        // bytes loaded twice today
  std::string message;                     // includes the `!$omp parallel do` suggestion
};

[[nodiscard]] std::vector<FusionAdvice> advise_fusion(const ir::Program& program,
                                                      const ipa::AnalysisResult& result);

struct OffloadAdvice {
  std::string proc;
  std::uint32_t loop_line = 0;
  std::string directive;              // the full acc directive text
  std::int64_t full_bytes = 0;        // copyin(whole arrays)
  std::int64_t region_bytes = 0;      // copyin(accessed portions)
  double est_speedup = 0;             // whole-array vs sub-array transfer+kernel
};

[[nodiscard]] std::vector<OffloadAdvice> advise_offload(
    const ir::Program& program, const ipa::AnalysisResult& result,
    const gpusim::TransferModel& xfer = {}, const gpusim::KernelModel& kernel = {});

struct ParallelCallAdvice {
  std::string proc;
  std::uint32_t loop_line = 0;
  std::vector<std::string> callees;
  bool parallelizable = false;
  std::string reason;
};

[[nodiscard]] std::vector<ParallelCallAdvice> advise_parallel_calls(
    const ir::Program& program, const ipa::AnalysisResult& result);

/// §VI PGAS extension: "support the analysis and visualization of remote
/// array accesses". Groups the coarray RUSE/RDEF records per (procedure,
/// array, image expression) and, when the accessed region is known, suggests
/// aggregating the fine-grained one-sided transfers into one bulk GET/PUT of
/// the whole region — the classic CAF communication-vectorization advice.
struct RemoteAccessAdvice {
  std::string proc;
  std::string array;
  std::string image;            // the co-subscript expression, e.g. "me + 1"
  std::string mode;             // RUSE or RDEF
  std::uint64_t references = 0; // remote accesses in this group
  std::string region;           // hull of the accessed region (may be symbolic)
  std::int64_t bytes = 0;       // bytes covered by the hull (0 if unknown)
  std::string message;
};

[[nodiscard]] std::vector<RemoteAccessAdvice> advise_remote(const ir::Program& program,
                                                            const ipa::AnalysisResult& result);

}  // namespace ara::dragon
