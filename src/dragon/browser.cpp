#include "dragon/browser.hpp"

#include "dragon/syntax.hpp"

#include <algorithm>
#include <sstream>

namespace ara::dragon {

std::vector<GrepHit> SourceBrowser::grep(const std::string& needle) const {
  std::vector<GrepHit> hits;
  const SourceManager& sm = program_.sources;
  for (FileId f = 1; f <= sm.file_count(); ++f) {
    for (std::uint32_t ln : sm.grep(f, needle)) {
      GrepHit hit;
      hit.file = sm.name(f);
      hit.line = ln;
      hit.text = std::string(*sm.line(f, ln));
      hits.push_back(std::move(hit));
    }
  }
  return hits;
}

std::string SourceBrowser::locate(const rgn::RegionRow& row) const {
  const SourceManager& sm = program_.sources;
  for (FileId f = 1; f <= sm.file_count(); ++f) {
    if (sm.object_name(f) != row.file) continue;
    if (const auto text = sm.line(f, row.line)) {
      std::ostringstream os;
      os << sm.name(f) << ':' << row.line << ": " << *text;
      return os.str();
    }
  }
  return "";
}

std::string SourceBrowser::listing(const std::string& file,
                                   const std::vector<std::uint32_t>& mark, bool ansi,
                                   std::string_view focus) const {
  const SourceManager& sm = program_.sources;
  const auto id = sm.find(file);
  if (!id) return "";
  const Language lang = sm.language(*id);
  std::ostringstream os;
  const std::size_t n = sm.line_count(*id);
  for (std::uint32_t ln = 1; ln <= n; ++ln) {
    const bool marked = std::find(mark.begin(), mark.end(), ln) != mark.end();
    const std::string_view raw = *sm.line(*id, ln);
    os << (marked ? '>' : ' ') << ' ' << ln << '\t'
       << (ansi ? highlight_line(raw, lang, focus) : std::string(raw)) << '\n';
  }
  return os.str();
}

}  // namespace ara::dragon
