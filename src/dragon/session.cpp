#include "dragon/session.hpp"

#include <fstream>
#include <sstream>

#include "dragon/dot.hpp"

namespace ara::dragon {

namespace {

std::optional<std::string> slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Session::Session(rgn::DgnProject project, std::vector<rgn::RegionRow> rows)
    : project_(std::move(project)), table_(std::move(rows)) {}

std::optional<Session> Session::load(const std::filesystem::path& dgn_path, std::string* error) {
  const auto dgn_text = slurp(dgn_path);
  if (!dgn_text) {
    if (error != nullptr) *error = "cannot read " + dgn_path.string();
    return std::nullopt;
  }
  rgn::DgnProject project;
  if (!rgn::parse_dgn(*dgn_text, project, error)) return std::nullopt;

  std::filesystem::path rgn_path = dgn_path;
  rgn_path.replace_extension(".rgn");
  const auto rgn_text = slurp(rgn_path);
  if (!rgn_text) {
    if (error != nullptr) *error = "cannot read " + rgn_path.string();
    return std::nullopt;
  }
  std::vector<rgn::RegionRow> rows;
  if (!rgn::parse_rgn(*rgn_text, rows, error)) return std::nullopt;
  return Session(std::move(project), std::move(rows));
}

std::vector<std::string> Session::procedure_pane() const {
  std::vector<std::string> pane;
  pane.emplace_back("@");
  for (const rgn::DgnProc& p : project_.procedures) pane.push_back(p.name);
  return pane;
}

std::string Session::callgraph_dot() const { return dragon::callgraph_dot(project_); }

}  // namespace ara::dragon
