#include "dragon/table.hpp"

#include <algorithm>

#include "support/string_utils.hpp"
#include "support/text_table.hpp"

namespace ara::dragon {

ArrayTable::ArrayTable(std::vector<rgn::RegionRow> rows) : rows_(std::move(rows)) {}

std::vector<std::string> ArrayTable::scopes() const {
  std::vector<std::string> out;
  bool has_globals = false;
  for (const rgn::RegionRow& r : rows_) {
    if (r.scope == "@") {
      has_globals = true;
      continue;
    }
    if (std::find(out.begin(), out.end(), r.scope) == out.end()) out.push_back(r.scope);
  }
  if (has_globals) out.insert(out.begin(), "@");
  return out;
}

std::vector<rgn::RegionRow> ArrayTable::rows_for_scope(const std::string& scope) const {
  std::vector<rgn::RegionRow> out;
  for (const rgn::RegionRow& r : rows_) {
    if (iequals(r.scope, scope)) out.push_back(r);
  }
  return out;
}

std::vector<std::size_t> ArrayTable::find(const std::string& name) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (iequals(rows_[i].array, name)) out.push_back(i);
  }
  return out;
}

std::vector<std::string> ArrayTable::arrays_in_scope(const std::string& scope) const {
  std::vector<std::string> out;
  for (const rgn::RegionRow& r : rows_) {
    if (!iequals(r.scope, scope)) continue;
    const auto match = std::find_if(out.begin(), out.end(),
                                    [&](const std::string& s) { return iequals(s, r.array); });
    if (match == out.end()) out.push_back(r.array);
  }
  return out;
}

std::vector<rgn::RegionRow> ArrayTable::hotspots(std::size_t top_n, bool arrays_only) const {
  std::vector<rgn::RegionRow> sorted;
  for (const rgn::RegionRow& r : rows_) {
    if (arrays_only && r.tot_size <= 1) continue;
    sorted.push_back(r);
  }
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const rgn::RegionRow& a, const rgn::RegionRow& b) {
                     return rgn::access_density_exact(a.references, a.size_bytes) >
                            rgn::access_density_exact(b.references, b.size_bytes);
                   });
  // One row per (array, mode): keep the first (densest) occurrence.
  std::vector<rgn::RegionRow> out;
  for (const rgn::RegionRow& r : sorted) {
    const bool dup = std::any_of(out.begin(), out.end(), [&](const rgn::RegionRow& o) {
      return iequals(o.array, r.array) && o.mode == r.mode && o.scope == r.scope;
    });
    if (!dup) out.push_back(r);
    if (out.size() >= top_n) break;
  }
  return out;
}

std::string ArrayTable::render(const std::string& scope, const std::string& highlight,
                               bool ansi) const {
  const auto scoped = rows_for_scope(scope);
  // The Image column only appears when the scope has remote (coarray) rows.
  bool has_remote = false;
  for (const rgn::RegionRow& r : scoped) has_remote |= !r.image.empty();

  TextTable table;
  std::vector<std::string> header{"Array", "File", "Mode", "Refs", "Dims", "LB", "UB",
                                  "Stride", "Esize", "Data_type", "Dim_size", "Tot_size",
                                  "Size_bytes", "Mem_Loc", "Acc_density"};
  if (has_remote) header.emplace_back("Image");
  table.set_header(std::move(header));
  for (const rgn::RegionRow& r : scoped) {
    const bool hl = !highlight.empty() && iequals(r.array, highlight);
    std::vector<std::string> cells{r.array, r.file, r.mode, std::to_string(r.references),
                                   std::to_string(r.dims), r.lb, r.ub, r.stride,
                                   std::to_string(r.element_size), r.data_type, r.dim_size,
                                   std::to_string(r.tot_size), std::to_string(r.size_bytes),
                                   r.mem_loc, std::to_string(r.acc_density)};
    if (has_remote) cells.push_back(r.image);
    table.add_row(std::move(cells), hl);
  }
  return table.render(ansi);
}

}  // namespace ara::dragon
