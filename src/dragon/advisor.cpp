#include "dragon/advisor.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ipa/local.hpp"
#include "ipa/wn_affine.hpp"
#include "obs/provenance.hpp"
#include "regions/convex_region.hpp"
#include "support/string_utils.hpp"

namespace ara::dragon {

using ipa::AccessRecord;
using regions::AccessMode;
using regions::ConvexRegion;
using regions::Region;

namespace {

bool is_access_mode(const AccessRecord& r) {
  return r.mode == AccessMode::Def || r.mode == AccessMode::Use;
}

/// Renders a region as a language-appropriate sub-array clause operand:
/// Fortran `u(1:3,1:5)`; C `aarr[2:6]` (per-dimension [lo:hi]).
std::string subarray_text(const std::string& name, const Region& hull, Language lang) {
  std::ostringstream os;
  os << name;
  if (lang == Language::Fortran) {
    os << '(';
    for (std::size_t i = 0; i < hull.rank(); ++i) {
      if (i != 0) os << ',';
      os << hull.dim(i).lb.str() << ':' << hull.dim(i).ub.str();
    }
    os << ')';
  } else {
    for (std::size_t i = 0; i < hull.rank(); ++i) {
      os << '[' << hull.dim(i).lb.str() << ':' << hull.dim(i).ub.str() << ']';
    }
  }
  return os.str();
}

/// Per-dimension [min,max] hull of all constant regions; nullopt when any
/// region has symbolic/unknown bounds or ranks differ.
std::optional<Region> const_hull(const std::vector<Region>& rs) {
  std::optional<Region> acc;
  for (const Region& r : rs) {
    if (!r.all_const()) return std::nullopt;
    if (!acc) {
      acc = r;
      continue;
    }
    acc = Region::hull(*acc, r);
    if (!acc) return std::nullopt;
  }
  return acc;
}

}  // namespace

std::vector<ResizeAdvice> advise_resize(const ir::Program& program,
                                        const ipa::AnalysisResult& result) {
  // Accessed hull per array symbol (DEF/USE/IDEF/IUSE), all scopes.
  std::map<ir::StIdx, std::vector<Region>> accessed;
  std::map<ir::StIdx, bool> analyzable;
  for (const AccessRecord& rec : result.records) {
    if (!is_access_mode(rec)) continue;
    const ir::Ty& ty = program.symtab.ty(program.symtab.st(rec.array).ty);
    if (!ty.is_array()) continue;
    accessed[rec.array].push_back(rec.region);
  }

  std::vector<ResizeAdvice> out;
  for (ir::StIdx idx : program.symtab.all_sts()) {
    const ir::St& st = program.symtab.st(idx);
    if (st.sclass == ir::StClass::Proc || st.storage == ir::StStorage::Formal) continue;
    const ir::Ty& ty = program.symtab.ty(st.ty);
    if (!ty.is_array()) continue;
    const auto bytes = ty.size_bytes();
    if (!bytes) continue;  // variable-length: nothing to shrink statically

    const auto it = accessed.find(idx);
    if (it == accessed.end()) {
      ResizeAdvice a;
      a.array = st.name;
      a.unused = true;
      a.saved_bytes = *bytes;
      for (const ir::ArrayDim& d : ty.dims) a.declared.push_back(d.extent().value_or(0));
      a.message = "array '" + st.name + "' is never accessed; removing it frees " +
                  std::to_string(a.saved_bytes) + " bytes";
      out.push_back(std::move(a));
      continue;
    }
    const auto hull = const_hull(it->second);
    if (!hull || hull->rank() != ty.rank()) continue;

    ResizeAdvice a;
    a.array = st.name;
    bool shrinks = false;
    std::int64_t new_elems = 1;
    for (std::size_t i = 0; i < ty.rank(); ++i) {
      const std::int64_t decl_lb = ty.dims[i].lb.value_or(0);
      const std::int64_t decl_ub = ty.dims[i].ub.value_or(0);
      const std::int64_t hi =
          std::max(*hull->dim(i).lb.const_value(), *hull->dim(i).ub.const_value());
      a.declared.push_back(decl_ub - decl_lb + 1);
      // Keep the declared lower bound as the anchor; shrink the top.
      const std::int64_t new_extent = std::max<std::int64_t>(hi - decl_lb + 1, 0);
      a.suggested.push_back(std::min(new_extent, a.declared.back()));
      if (a.suggested.back() < a.declared.back()) shrinks = true;
      new_elems *= a.suggested.back();
    }
    if (!shrinks) continue;
    a.saved_bytes = *bytes - new_elems * ty.element_size();
    std::ostringstream msg;
    msg << "array '" << st.name << "' only ever accesses ";
    msg << hull->str() << "; redefining its extents to (";
    for (std::size_t i = 0; i < a.suggested.size(); ++i) {
      if (i != 0) msg << ',';
      msg << a.suggested[i];
    }
    msg << ") saves " << a.saved_bytes << " bytes";
    a.message = msg.str();
    out.push_back(std::move(a));
  }
  return out;
}

namespace {

/// Collects (array st -> mode -> regions) from a subtree summary.
struct LoopAccess {
  std::map<ir::StIdx, std::vector<Region>> defs;
  std::map<ir::StIdx, std::vector<Region>> uses;
  std::set<ir::StIdx> scalar_defs;
};

LoopAccess collect(const ipa::LocalSummary& s, const ir::Program& program) {
  LoopAccess out;
  for (const AccessRecord& rec : s.records) {
    const ir::Ty& ty = program.symtab.ty(program.symtab.st(rec.array).ty);
    if (!ty.is_array()) {
      if (rec.mode == AccessMode::Def) out.scalar_defs.insert(rec.array);
      continue;
    }
    if (rec.mode == AccessMode::Def) out.defs[rec.array].push_back(rec.region);
    if (rec.mode == AccessMode::Use) out.uses[rec.array].push_back(rec.region);
  }
  return out;
}

/// True when a DEF region list may overlap any region in `others`.
bool may_overlap(const std::vector<Region>& defs, const std::vector<Region>& others) {
  for (const Region& d : defs) {
    const ConvexRegion cd = ConvexRegion::from_region(d);
    for (const Region& o : others) {
      if (!ConvexRegion::certainly_disjoint(cd, ConvexRegion::from_region(o))) return true;
    }
  }
  return false;
}

bool same_affine(const ir::WN& a, const ir::WN& b, const ir::SymbolTable& symtab) {
  const auto ea = ipa::wn_to_affine(a, symtab);
  const auto eb = ipa::wn_to_affine(b, symtab);
  return ea && eb && *ea == *eb;
}

}  // namespace

std::vector<FusionAdvice> advise_fusion(const ir::Program& program,
                                        const ipa::AnalysisResult& result) {
  std::vector<FusionAdvice> out;
  ipa::LocalAnalyzer local(program);

  for (std::uint32_t n = 0; n < result.callgraph.size(); ++n) {
    const ipa::CGNode& node = result.callgraph.node(n);
    if (!node.proc->tree) continue;
    node.proc->tree->walk([&](const ir::WN& wn) {
      if (wn.opr() != ir::Opr::Block) return true;
      for (std::size_t i = 0; i + 1 < wn.kid_count(); ++i) {
        const ir::WN* l1 = wn.kid(i);
        const ir::WN* l2 = wn.kid(i + 1);
        if (l1->opr() != ir::Opr::DoLoop || l2->opr() != ir::Opr::DoLoop) continue;
        // Identical iteration spaces are required for a direct merge.
        if (!same_affine(*l1->loop_init(), *l2->loop_init(), program.symtab) ||
            !same_affine(*l1->loop_end(), *l2->loop_end(), program.symtab) ||
            !same_affine(*l1->loop_step(), *l2->loop_step(), program.symtab)) {
          continue;
        }
        const LoopAccess a1 = collect(local.analyze_subtree(*l1, node), program);
        const LoopAccess a2 = collect(local.analyze_subtree(*l2, node), program);
        // Conservative dependence test: nothing DEFed in one loop may be
        // touched in the other, and no scalar reductions may be shared.
        bool dependent = false;
        for (const auto& [st, defs] : a1.defs) {
          const auto u2 = a2.uses.find(st);
          const auto d2 = a2.defs.find(st);
          if ((u2 != a2.uses.end() && may_overlap(defs, u2->second)) ||
              (d2 != a2.defs.end() && may_overlap(defs, d2->second))) {
            dependent = true;
          }
        }
        for (const auto& [st, defs] : a2.defs) {
          const auto u1 = a1.uses.find(st);
          if (u1 != a1.uses.end() && may_overlap(defs, u1->second)) dependent = true;
        }
        for (ir::StIdx s : a1.scalar_defs) {
          if (a2.scalar_defs.count(s) != 0) dependent = true;
        }
        if (dependent) continue;

        // Fusion pays off when the loops re-read the same data: shared
        // arrays whose USE regions coincide (the XCR pattern of Fig 13).
        FusionAdvice adv;
        for (const auto& [st, uses1] : a1.uses) {
          const auto it = a2.uses.find(st);
          if (it == a2.uses.end()) continue;
          const auto h1 = const_hull(uses1);
          const auto h2 = const_hull(it->second);
          if (h1 && h2 && *h1 == *h2) {
            adv.shared_arrays.push_back(program.symtab.st(st).name);
            const auto elems = h1->element_count();
            const std::int64_t esize =
                program.symtab.ty(program.symtab.st(st).ty).element_size();
            if (elems) adv.refetched_bytes += *elems * esize;
          }
        }
        if (adv.shared_arrays.empty()) continue;
        adv.proc = program.symtab.st(node.proc_st).name;
        adv.first_loop_line = l1->linenum().line;
        adv.second_loop_line = l2->linenum().line;
        std::ostringstream msg;
        msg << "loops at lines " << adv.first_loop_line << " and " << adv.second_loop_line
            << " of " << adv.proc << " read the same region of "
            << join(adv.shared_arrays, ", ")
            << " with no dependence; merge them and insert a single `!$omp parallel do` "
               "before the fused loop (avoids re-fetching "
            << adv.refetched_bytes << " bytes and one parallel-region startup)";
        adv.message = msg.str();
        out.push_back(std::move(adv));
      }
      return true;
    });
  }
  return out;
}

std::vector<OffloadAdvice> advise_offload(const ir::Program& program,
                                          const ipa::AnalysisResult& result,
                                          const gpusim::TransferModel& xfer,
                                          const gpusim::KernelModel& kernel) {
  std::vector<OffloadAdvice> out;
  ipa::LocalAnalyzer local(program);

  for (std::uint32_t n = 0; n < result.callgraph.size(); ++n) {
    const ipa::CGNode& node = result.callgraph.node(n);
    if (!node.proc->tree) continue;
    const Language lang = program.sources.language(node.proc->file);
    // Outermost loops only: walk prunes below each DO_LOOP it visits.
    node.proc->tree->walk([&](const ir::WN& wn) {
      if (wn.opr() != ir::Opr::DoLoop) return true;
      const LoopAccess access = collect(local.analyze_subtree(wn, node), program);

      std::vector<std::string> copyin, copyout, copy;
      std::int64_t full_bytes = 0;
      std::int64_t region_total = 0;
      std::int64_t chunks_total = 0;
      std::int64_t kernel_elems = 0;
      for (const auto& [st, uses] : access.uses) {
        const ir::Ty& ty = program.symtab.ty(program.symtab.st(st).ty);
        const bool defed = access.defs.count(st) != 0;
        std::vector<Region> all = uses;
        if (defed) {
          const auto& defs = access.defs.at(st);
          all.insert(all.end(), defs.begin(), defs.end());
        }
        const auto hull = const_hull(all);
        const auto bytes = ty.size_bytes();
        if (!hull || !bytes) continue;
        const std::string clause =
            subarray_text(program.symtab.st(st).name, *hull, lang);
        (defed ? copy : copyin).push_back(clause);
        full_bytes += *bytes;
        const std::int64_t rb = gpusim::region_bytes(*hull, ty.element_size());
        region_total += rb;
        chunks_total += gpusim::contiguous_chunks(*hull, ty);
        kernel_elems += hull->element_count().value_or(0);
      }
      for (const auto& [st, defs] : access.defs) {
        if (access.uses.count(st) != 0) continue;  // already in copy
        const ir::Ty& ty = program.symtab.ty(program.symtab.st(st).ty);
        const auto hull = const_hull(defs);
        const auto bytes = ty.size_bytes();
        if (!hull || !bytes) continue;
        copyout.push_back(subarray_text(program.symtab.st(st).name, *hull, lang));
        full_bytes += *bytes;
        region_total += gpusim::region_bytes(*hull, ty.element_size());
        chunks_total += gpusim::contiguous_chunks(*hull, ty);
        kernel_elems += hull->element_count().value_or(0);
      }
      if (region_total == 0 || region_total >= full_bytes) return false;

      OffloadAdvice adv;
      adv.proc = program.symtab.st(node.proc_st).name;
      adv.loop_line = wn.linenum().line;
      std::ostringstream dir;
      dir << (lang == Language::Fortran ? "!$acc region" : "#pragma acc region for");
      auto emit_clause = [&dir](const char* name, const std::vector<std::string>& items) {
        if (items.empty()) return;
        dir << ' ' << name << '(' << join(items, ", ") << ')';
      };
      emit_clause("copyin", copyin);
      emit_clause("copyout", copyout);
      emit_clause("copy", copy);
      adv.directive = dir.str();
      adv.full_bytes = full_bytes;
      adv.region_bytes = region_total;
      gpusim::OffloadScenario scenario;
      scenario.full_bytes = full_bytes;
      scenario.region_bytes = region_total;
      scenario.region_chunks = chunks_total;
      scenario.kernel_elements = kernel_elems;
      adv.est_speedup = gpusim::simulate_offload(scenario, xfer, kernel).speedup;
      out.push_back(std::move(adv));
      return false;  // don't descend into inner loops
    });
  }
  return out;
}

std::vector<ParallelCallAdvice> advise_parallel_calls(const ir::Program& program,
                                                      const ipa::AnalysisResult& result) {
  std::vector<ParallelCallAdvice> out;

  // Interprocedural side effects per call site, keyed by (caller, line).
  struct SiteEffects {
    std::map<ir::StIdx, std::vector<Region>> defs;
    std::map<ir::StIdx, std::vector<Region>> uses;
  };
  std::map<std::pair<ir::StIdx, std::uint32_t>, SiteEffects> sites;
  for (const AccessRecord& rec : result.records) {
    if (!rec.interproc) continue;
    auto& site = sites[{rec.scope_proc, rec.line}];
    (rec.mode == AccessMode::Def ? site.defs : site.uses)[rec.array].push_back(rec.region);
  }

  for (std::uint32_t n = 0; n < result.callgraph.size(); ++n) {
    const ipa::CGNode& node = result.callgraph.node(n);
    if (!node.proc->tree) continue;
    node.proc->tree->walk([&](const ir::WN& wn) {
      if (wn.opr() != ir::Opr::DoLoop) return true;
      // Direct calls in the loop body.
      std::vector<const ir::WN*> calls;
      const ir::WN* body = wn.loop_body();
      for (std::size_t i = 0; i < body->kid_count(); ++i) {
        if (body->kid(i)->opr() == ir::Opr::Call) calls.push_back(body->kid(i));
      }
      if (calls.size() < 2) return true;

      ParallelCallAdvice adv;
      adv.proc = program.symtab.st(node.proc_st).name;
      adv.loop_line = wn.linenum().line;
      adv.parallelizable = true;
      std::ostringstream reason;
      for (const ir::WN* c : calls) {
        adv.callees.push_back(program.symtab.st(c->st_idx()).name);
      }
      for (std::size_t i = 0; i < calls.size() && adv.parallelizable; ++i) {
        for (std::size_t j = i + 1; j < calls.size() && adv.parallelizable; ++j) {
          const auto si = sites.find({node.proc_st, calls[i]->linenum().line});
          const auto sj = sites.find({node.proc_st, calls[j]->linenum().line});
          if (si == sites.end() || sj == sites.end()) continue;
          auto check = [&](const std::map<ir::StIdx, std::vector<Region>>& defs,
                           const SiteEffects& other) {
            for (const auto& [st, d] : defs) {
              const auto ou = other.uses.find(st);
              const auto od = other.defs.find(st);
              if ((ou != other.uses.end() && may_overlap(d, ou->second)) ||
                  (od != other.defs.end() && may_overlap(d, od->second))) {
                adv.parallelizable = false;
                reason << "calls at lines " << calls[i]->linenum().line << " and "
                       << calls[j]->linenum().line << " conflict on '"
                       << program.symtab.st(st).name << "'";
                if (obs::prov_capturing()) {
                  obs::prov_record(
                      obs::CauseKind::LoopNotParallel,
                      {adv.proc, program.symtab.st(st).name,
                       program.sources.name(node.proc->file), adv.loop_line},
                      -1, reason.str());
                }
                return;
              }
            }
          };
          check(si->second.defs, sj->second);
          if (adv.parallelizable) check(sj->second.defs, si->second);
        }
      }
      if (adv.parallelizable) {
        reason << "interprocedural DEF/USE regions of " << join(adv.callees, ", ")
               << " are pairwise disjoint; the calls can run concurrently "
                  "(e.g. inside `!$omp parallel sections`)";
      }
      adv.reason = reason.str();
      out.push_back(std::move(adv));
      return true;
    });
  }
  return out;
}

std::vector<RemoteAccessAdvice> advise_remote(const ir::Program& program,
                                              const ipa::AnalysisResult& result) {
  struct Group {
    std::uint64_t refs = 0;
    std::vector<Region> regions;
    ir::StIdx array = ir::kInvalidSt;
  };
  std::map<std::tuple<ir::StIdx, std::string, AccessMode, std::string>, Group> groups;
  for (const AccessRecord& rec : result.records) {
    if (!rec.remote) continue;
    const std::string proc =
        rec.scope_proc != ir::kInvalidSt ? program.symtab.st(rec.scope_proc).name : "@";
    Group& g = groups[{rec.scope_proc, proc, rec.mode, rec.image}];
    g.array = rec.array;
    g.refs += rec.refs;
    g.regions.push_back(rec.region);
  }

  std::vector<RemoteAccessAdvice> out;
  for (const auto& [key, g] : groups) {
    const auto& [scope_st, proc, mode, image] = key;
    RemoteAccessAdvice adv;
    adv.proc = proc;
    adv.array = program.symtab.st(g.array).name;
    adv.image = image;
    adv.mode = mode == AccessMode::Def ? "RDEF" : "RUSE";
    adv.references = g.refs;
    const ir::Ty& ty = program.symtab.ty(program.symtab.st(g.array).ty);
    if (const auto hull = const_hull(g.regions)) {
      adv.region = hull->str();
      const auto elems = hull->element_count();
      if (elems) adv.bytes = *elems * ty.element_size();
    } else if (!g.regions.empty()) {
      adv.region = g.regions.front().str();
    }
    std::ostringstream msg;
    msg << adv.references << " remote " << (mode == AccessMode::Def ? "PUT" : "GET")
        << (adv.references == 1 ? "" : "s") << " of " << adv.array << " to image [" << image
        << "] in " << proc;
    if (!adv.region.empty()) {
      msg << "; aggregate into one bulk " << (mode == AccessMode::Def ? "PUT" : "GET")
          << " of " << adv.array << adv.region << "[" << image << "]";
      if (adv.bytes > 0) msg << " (" << adv.bytes << " bytes, one communication startup)";
    }
    adv.message = msg.str();
    out.push_back(std::move(adv));
  }
  return out;
}

}  // namespace ara::dragon
