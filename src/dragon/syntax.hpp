// Syntax highlighting — one of the Dragon GUI features the paper lists
// ("GUI features include: support for multiple platforms, syntax
// highlighting, source code analysis, ...", §V). The console rendition emits
// ANSI colour escapes: keywords bold blue, comments dim, numeric literals
// cyan, and (optionally) one array-of-interest in green, matching the find
// feature's green highlighting.
#pragma once

#include <string>
#include <string_view>

#include "support/source_manager.hpp"

namespace ara::dragon {

struct SyntaxStyle {
  std::string keyword = "\x1b[1;34m";  // bold blue
  std::string comment = "\x1b[2m";     // dim
  std::string number = "\x1b[36m";     // cyan
  std::string focus = "\x1b[32m";      // green: the array being tracked
  std::string reset = "\x1b[0m";
};

/// True when `word` is a keyword of the given language (case-insensitive for
/// Fortran, exact for C).
[[nodiscard]] bool is_keyword(std::string_view word, Language lang);

/// Highlights one source line. `focus` (may be empty) is an identifier to
/// paint with the focus colour — the array the user searched for.
[[nodiscard]] std::string highlight_line(std::string_view line, Language lang,
                                         std::string_view focus = {},
                                         const SyntaxStyle& style = {});

}  // namespace ara::dragon
