// Dragon's array analysis graph (Fig 6): a tabular view of the .rgn rows
// with a procedure/scope list on the left ("The @ symbol at the top of this
// column indicates global arrays"), per-scope filtering, and the find
// feature that highlights all accesses to a named array in green.
#pragma once

#include <string>
#include <vector>

#include "rgn/region_row.hpp"

namespace ara::dragon {

class ArrayTable {
 public:
  explicit ArrayTable(std::vector<rgn::RegionRow> rows);

  [[nodiscard]] const std::vector<rgn::RegionRow>& rows() const { return rows_; }

  /// Scope list for the left column: "@" first (when global rows exist),
  /// then procedure names in first-appearance order.
  [[nodiscard]] std::vector<std::string> scopes() const;

  /// Rows for one scope ("@" = globals), i.e. the click on a procedure name.
  [[nodiscard]] std::vector<rgn::RegionRow> rows_for_scope(const std::string& scope) const;

  /// The find button: row indices (into rows()) whose Array matches `name`
  /// case-insensitively — these are the rows the GUI highlights.
  [[nodiscard]] std::vector<std::size_t> find(const std::string& name) const;

  /// Distinct array names in a scope.
  [[nodiscard]] std::vector<std::string> arrays_in_scope(const std::string& scope) const;

  /// Hotspot ranking: rows ordered by exact access density, densest first
  /// ("it helps the user to identify the hotspot arrays in the program").
  /// `arrays_only` drops scalar rows (tot_size <= 1), which otherwise
  /// dominate the ranking with their 1-byte denominators.
  [[nodiscard]] std::vector<rgn::RegionRow> hotspots(std::size_t top_n = 10,
                                                     bool arrays_only = false) const;

  /// Renders the Fig 9-style table; rows matching `highlight` (array name,
  /// may be empty) are marked, as the GUI marks find results.
  [[nodiscard]] std::string render(const std::string& scope, const std::string& highlight = "",
                                   bool ansi = false) const;

 private:
  std::vector<rgn::RegionRow> rows_;
};

}  // namespace ara::dragon
