#include "dragon/syntax.hpp"

#include <cctype>
#include <set>

#include "support/string_utils.hpp"

namespace ara::dragon {

namespace {

const std::set<std::string>& fortran_keywords() {
  static const std::set<std::string> kw = {
      "subroutine", "program", "function", "end",    "do",     "enddo",  "if",
      "then",       "else",    "endif",    "call",   "return", "common", "integer",
      "real",       "double",  "precision", "character", "logical", "dimension",
      "continue",
  };
  return kw;
}

const std::set<std::string>& c_keywords() {
  static const std::set<std::string> kw = {
      "void", "int",  "double", "float",  "char", "long", "short", "unsigned",
      "for",  "if",   "else",   "return", "while",
  };
  return kw;
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

bool is_keyword(std::string_view word, Language lang) {
  if (lang == Language::Fortran) return fortran_keywords().count(to_lower(word)) != 0;
  return c_keywords().count(std::string(word)) != 0;
}

std::string highlight_line(std::string_view line, Language lang, std::string_view focus,
                           const SyntaxStyle& style) {
  std::string out;
  std::size_t i = 0;

  // Whole-line / trailing comments swallow the rest of the line.
  auto comment_starts = [&](std::size_t pos) {
    if (lang == Language::Fortran) return line[pos] == '!';
    return line[pos] == '/' && pos + 1 < line.size() && line[pos + 1] == '/';
  };

  while (i < line.size()) {
    const char c = line[i];
    if (comment_starts(i)) {
      out += style.comment;
      out += line.substr(i);
      out += style.reset;
      return out;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < line.size() && ident_char(line[j])) ++j;
      const std::string_view word = line.substr(i, j - i);
      if (!focus.empty() && iequals(word, focus)) {
        out += style.focus;
        out += word;
        out += style.reset;
      } else if (is_keyword(word, lang)) {
        out += style.keyword;
        out += word;
        out += style.reset;
      } else {
        out += word;
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < line.size() &&
             (std::isdigit(static_cast<unsigned char>(line[j])) || line[j] == '.')) {
        ++j;
      }
      out += style.number;
      out += line.substr(i, j - i);
      out += style.reset;
      i = j;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace ara::dragon
