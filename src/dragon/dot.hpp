// Graphviz export. "Dragon ... uses Graphviz library to represent code
// structure information in a scalable graphical form" (§V); Fig 11 shows the
// LU call graph. We emit DOT text that any graphviz renders.
#pragma once

#include <string>

#include "rgn/dgn.hpp"

namespace ara::dragon {

/// The Fig 11 call graph: one node per procedure (entry nodes are doubled
/// boxes), one edge per call site, labelled with the source line.
[[nodiscard]] std::string callgraph_dot(const rgn::DgnProject& project);

}  // namespace ara::dragon
