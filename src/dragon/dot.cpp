#include "dragon/dot.hpp"

#include <sstream>

namespace ara::dragon {

std::string callgraph_dot(const rgn::DgnProject& project) {
  std::ostringstream os;
  os << "digraph \"" << project.name << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const rgn::DgnProc& p : project.procedures) {
    os << "  \"" << p.name << "\" [label=\"" << p.name << "\"";
    if (p.is_entry) os << ", peripheries=2";
    os << "];\n";
  }
  for (const rgn::DgnEdge& e : project.edges) {
    os << "  \"" << e.caller << "\" -> \"" << e.callee << "\"";
    if (e.line != 0) os << " [label=\"" << e.line << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ara::dragon
