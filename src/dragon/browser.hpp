// Dragon's source browsing pane (Fig 7): "the developer has the ability to
// distinctly visualize the source code in order to refer to any particular
// global array or an array parameter", with a "find / UNIX-like grep
// feature" that lists every statement mentioning an array.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "rgn/region_row.hpp"

namespace ara::dragon {

struct GrepHit {
  std::string file;
  std::uint32_t line = 0;
  std::string text;
};

class SourceBrowser {
 public:
  explicit SourceBrowser(const ir::Program& program) : program_(program) {}

  /// All statements in all files whose text mentions `needle` (Fig 7's
  /// grep box).
  [[nodiscard]] std::vector<GrepHit> grep(const std::string& needle) const;

  /// The source line an .rgn row points at (the click-to-locate feature).
  [[nodiscard]] std::string locate(const rgn::RegionRow& row) const;

  /// A numbered listing of `file` with `mark` lines flagged by '>' (the
  /// GUI's highlighted statements). With `ansi`, applies the Dragon syntax
  /// highlighter; `focus` paints one identifier green (the searched array).
  [[nodiscard]] std::string listing(const std::string& file,
                                    const std::vector<std::uint32_t>& mark = {},
                                    bool ansi = false, std::string_view focus = {}) const;

 private:
  const ir::Program& program_;
};

}  // namespace ara::dragon
