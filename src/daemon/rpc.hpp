// The arad wire protocol (`ara.rpc.v1`, docs/FORMATS.md): newline-delimited
// JSON over a Unix-domain stream socket. One request per line:
//
//   {"id": 7, "method": "analyze", "params": {...}}
//
// answered by exactly one response line with the same id:
//
//   {"id": 7, "ok": true,  "result": {...}}
//   {"id": 7, "ok": false, "error": "what went wrong"}
//
// ids are chosen by the client (echoed verbatim, monotonically increasing
// by convention); methods are `analyze`, `query`, `explain`, `status`,
// `shutdown`. The framing is deliberately dumb — no length prefixes, no
// binary — so a daemon can be driven from a shell with `nc -U`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.hpp"

namespace ara::daemon {

/// Protocol identifier reported by `status` and documented in FORMATS.md.
inline constexpr std::string_view kRpcSchema = "ara.rpc.v1";

struct RpcRequest {
  std::uint64_t id = 0;
  std::string method;
  json::Value params;  // the params object; Kind::Null when absent
};

/// Parses one request line. Returns nullopt and sets `error` on malformed
/// input (bad JSON, missing/ill-typed id or method). When the line carried
/// a recognizable id despite being malformed, `*id_out` receives it so the
/// error response can still be correlated.
[[nodiscard]] std::optional<RpcRequest> parse_request(const std::string& line,
                                                      std::string* error,
                                                      std::uint64_t* id_out = nullptr);

/// `{"id":N,"ok":true,"result":<result_object>}\n`. `result_object` must
/// already be serialized JSON (an object, by convention).
[[nodiscard]] std::string ok_response(std::uint64_t id, const std::string& result_object);

/// `{"id":N,"ok":false,"error":"..."}\n`.
[[nodiscard]] std::string error_response(std::uint64_t id, std::string_view message);

/// Machine-readable failure classes for `ok:false` responses. Clients key
/// their retry decisions off these, never off the human-readable `error`
/// text: `overloaded` and `shutting_down` are transient (retry after
/// `retry_after_ms`), the rest are deterministic and must not be retried.
inline constexpr std::string_view kCodeOverloaded = "overloaded";
inline constexpr std::string_view kCodeTooLarge = "too_large";
inline constexpr std::string_view kCodeDeadline = "deadline";
inline constexpr std::string_view kCodeShuttingDown = "shutting_down";

/// Coded failure: `{"id":N,"ok":false,"code":"...","error":"..."
/// [,"retry_after_ms":M]}\n`. `retry_after_ms` is emitted when >= 0 — the
/// backoff hint a shedding daemon sends with `overloaded`/`shutting_down`.
[[nodiscard]] std::string error_response(std::uint64_t id, std::string_view code,
                                         std::string_view message,
                                         std::int64_t retry_after_ms);

/// Convenience param accessors (nullptr / fallback when absent or
/// ill-typed). `params` may be any Value; only objects yield members.
[[nodiscard]] std::string param_string(const json::Value& params, std::string_view key,
                                       std::string_view fallback = {});
[[nodiscard]] std::uint64_t param_u64(const json::Value& params, std::string_view key,
                                      std::uint64_t fallback = 0);
[[nodiscard]] bool param_bool(const json::Value& params, std::string_view key, bool fallback);

}  // namespace ara::daemon
