#include "daemon/rpc.hpp"

#include <cmath>
#include <sstream>

namespace ara::daemon {

std::optional<RpcRequest> parse_request(const std::string& line, std::string* error,
                                        std::uint64_t* id_out) {
  auto fail = [&](std::string_view why) -> std::optional<RpcRequest> {
    if (error != nullptr) *error = std::string(why);
    return std::nullopt;
  };

  std::string parse_error;
  const std::optional<json::Value> v = json::parse(line, &parse_error);
  if (!v.has_value()) return fail("bad JSON: " + parse_error);
  if (!v->is_object()) return fail("request must be a JSON object");

  RpcRequest req;
  const json::Value* id = v->find("id");
  if (id == nullptr || !id->is_number() || id->number < 0 ||
      id->number != std::floor(id->number)) {
    return fail("'id' must be a non-negative integer");
  }
  req.id = static_cast<std::uint64_t>(id->number);
  if (id_out != nullptr) *id_out = req.id;

  const json::Value* method = v->find("method");
  if (method == nullptr || !method->is_string()) return fail("'method' must be a string");
  req.method = method->string;

  if (const json::Value* params = v->find("params"); params != nullptr) {
    if (!params->is_object()) return fail("'params' must be an object");
    req.params = *params;
  }
  return req;
}

std::string ok_response(std::uint64_t id, const std::string& result_object) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"ok\":true,\"result\":" << result_object << "}\n";
  return os.str();
}

std::string error_response(std::uint64_t id, std::string_view message) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"ok\":false,\"error\":\"" << json::escape(message) << "\"}\n";
  return os.str();
}

std::string error_response(std::uint64_t id, std::string_view code, std::string_view message,
                           std::int64_t retry_after_ms) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"ok\":false,\"code\":\"" << json::escape(code)
     << "\",\"error\":\"" << json::escape(message) << "\"";
  if (retry_after_ms >= 0) os << ",\"retry_after_ms\":" << retry_after_ms;
  os << "}\n";
  return os.str();
}

std::string param_string(const json::Value& params, std::string_view key,
                         std::string_view fallback) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_string()) return std::string(fallback);
  return v->string;
}

std::uint64_t param_u64(const json::Value& params, std::string_view key,
                        std::uint64_t fallback) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return fallback;
  return static_cast<std::uint64_t>(v->number);
}

bool param_bool(const json::Value& params, std::string_view key, bool fallback) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_bool()) return fallback;
  return v->boolean;
}

}  // namespace ara::daemon
