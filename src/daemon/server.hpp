// arad's core: a long-lived analysis server on a Unix-domain socket. One
// accept thread hands each connection to the serve thread pool
// (ThreadPool::submit), so concurrent clients multiplex onto the same
// workers the batch engine uses; each connection speaks ara.rpc.v1
// (daemon/rpc.hpp) and each request runs inside its own error barrier — a
// crashing request answers `ok:false` and the daemon keeps serving.
//
// Warm state: one serve::ProjectState per project name, holding the
// dependency map and resident unit summaries across requests. `analyze`
// runs the dependency-aware incremental batch (changed units + transitive
// dependents only); `query` / `explain` answer from the latest published
// snapshot, including while a re-analysis is in flight. The total resident
// footprint is bounded by `max_resident_mb`: after each analyze, the
// least-recently-used projects are evicted (dropped entirely — the disk
// summary cache still makes their next analyze warm).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include "daemon/rpc.hpp"
#include "serve/project.hpp"
#include "serve/threadpool.hpp"
#include "support/json.hpp"

namespace ara::daemon {

struct DaemonOptions {
  std::string socket_path;
  /// Request worker threads (connections served concurrently); 0 = hardware
  /// concurrency. Analyze requests additionally use BatchOptions::jobs
  /// workers inside run_batch.
  std::size_t jobs = 2;
  /// Resident-memory budget over all projects (snapshots + incremental
  /// state), in MiB. 0 = unbounded.
  std::size_t max_resident_mb = 512;
  /// Default unit-analysis parallelism for analyze requests that do not
  /// pass their own "jobs" param.
  std::size_t analyze_jobs = 1;

  // --- Overload-and-failure survival knobs (ISSUE 10) ---

  /// Admission budget: requests being handled concurrently. A request
  /// arriving past it is shed with `code:"overloaded"` instead of queuing.
  /// 0 = the pool size (workers bound concurrency, so nothing sheds here
  /// and the queue budget below does the load shedding).
  std::size_t max_inflight = 0;
  /// Connections accepted but not yet picked up by a worker. Past it the
  /// accept loop answers `overloaded` on the fresh fd and closes it — the
  /// backlog is bounded, never the client count.
  std::size_t max_queue = 64;
  /// Per-request line cap in bytes; an oversized line answers
  /// `code:"too_large"` and the connection is closed (framing is lost).
  std::size_t max_request_bytes = 8 * 1024 * 1024;
  /// Per-connection socket budget: a connection that produces no complete
  /// request for this long (idle or trickling) is closed, and a client not
  /// draining its response for this long is dropped. 0 = no timeout.
  std::uint64_t idle_timeout_ms = 30'000;
  /// Deadline applied to analyze requests that do not pass their own
  /// "deadline_ms" param (per-unit wall-clock watchdog). 0 = none.
  std::uint64_t default_deadline_ms = 0;
  /// Graceful-drain budget: how long stop() waits for in-flight requests
  /// to finish after a `shutdown {"drain":true}` / SIGTERM before severing.
  std::uint64_t drain_ms = 5'000;
  /// Backoff hint sent with `overloaded` / `shutting_down` sheds.
  std::uint64_t retry_after_ms = 50;
};

class DaemonServer {
 public:
  explicit DaemonServer(DaemonOptions opts);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// Binds the socket and starts the accept thread. False (with `error`
  /// set) when the socket cannot be created — e.g. another daemon is
  /// already listening on the path.
  [[nodiscard]] bool start(std::string* error);

  /// Blocks until a `shutdown` request (or stop()) ends the serve loop.
  void wait();

  /// Stops accepting, severs open connections, joins the accept thread.
  /// When a drain was requested (shutdown {"drain":true} or
  /// request_shutdown(true)), first waits up to opts.drain_ms for in-flight
  /// requests to finish — their responses go out before anything is
  /// severed. Idempotent; also called by the destructor.
  void stop();

  /// Asks the serve loop to end, exactly like a `shutdown` request over the
  /// wire: wait() returns and the caller runs stop(). `drain` additionally
  /// stops admitting new work (new requests answer `code:"shutting_down"`)
  /// while in-flight requests finish inside the drain budget. Safe to call
  /// from any thread (arad's SIGTERM watcher uses it).
  void request_shutdown(bool drain);

  [[nodiscard]] const std::string& socket_path() const { return opts_.socket_path; }

  /// Lifetime counters (tests and `status`).
  [[nodiscard]] std::uint64_t requests() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t request_errors() const { return request_errors_.load(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_.load(); }
  [[nodiscard]] std::uint64_t shed_requests() const { return shed_requests_.load(); }
  [[nodiscard]] std::uint64_t shed_connections() const { return shed_connections_.load(); }
  [[nodiscard]] std::uint64_t too_large_requests() const { return too_large_.load(); }
  [[nodiscard]] std::uint64_t deadline_expired() const { return deadline_expired_.load(); }
  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// One request line in, one response line out — the transport-free core,
  /// used directly by tests (no socket needed).
  [[nodiscard]] std::string handle_line(const std::string& line);

 private:
  void accept_loop();
  void serve_connection(int fd);

  /// Pre-execution admission check for a parsed request: nullopt admits;
  /// otherwise the shed response (`overloaded` past the in-flight budget,
  /// `shutting_down` while draining). status/shutdown are always admitted.
  [[nodiscard]] std::optional<std::string> admit(const RpcRequest& req);

  [[nodiscard]] std::string handle_analyze(const json::Value& params);
  [[nodiscard]] std::string handle_query(const json::Value& params);
  [[nodiscard]] std::string handle_explain(const json::Value& params);
  [[nodiscard]] std::string handle_status();

  /// Looks up (optionally creating) the project's warm state.
  [[nodiscard]] std::shared_ptr<serve::ProjectState> project(const std::string& name,
                                                             bool create);
  /// Evicts least-recently-used projects until the resident total fits the
  /// budget; `keep` (the project just used) is never evicted.
  void enforce_budget(const std::string& keep);

  DaemonOptions opts_;
  std::size_t max_inflight_ = 0;  // opts_.max_inflight resolved (0 = pool size)
  // Atomic because stop() invalidates it while accept_loop() is still
  // passing it to accept(); the loop exits on the resulting error.
  std::atomic<int> listen_fd_{-1};
  bool owns_socket_file_ = false;  // bind succeeded; stop() may unlink the path
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};  // refuse new work, finish in-flight

  std::mutex conn_mu_;       // guards conn_fds_
  std::set<int> conn_fds_;   // open client connections (severed on stop)

  std::mutex projects_mu_;   // guards projects_
  std::map<std::string, std::shared_ptr<serve::ProjectState>> projects_;

  std::mutex done_mu_;       // wait()/shutdown handshake
  std::condition_variable done_cv_;
  bool done_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> request_errors_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> shed_requests_{0};     // answered `overloaded`/`shutting_down`
  std::atomic<std::uint64_t> shed_connections_{0};  // closed at accept (queue full)
  std::atomic<std::uint64_t> too_large_{0};         // oversized request lines
  std::atomic<std::uint64_t> deadline_expired_{0};  // units demoted by a deadline

  /// Connections accepted but not yet picked up by a worker (the bounded
  /// queue); requests currently inside handle_line (what the admission
  /// budget counts — dropped before the response is written, so a client
  /// that pipelines its next request after reading a reply never races the
  /// decrement); responses currently being written (the drain waits on
  /// busy_ and writing_ both, so finished work still reaches its client).
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> busy_{0};
  std::atomic<std::size_t> writing_{0};

  /// Last member on purpose: destroyed first, so its workers (connection
  /// handlers touching projects_ and the counters) drain before anything
  /// they use goes away.
  serve::ThreadPool pool_;
};

}  // namespace ara::daemon
