// arad's core: a long-lived analysis server on a Unix-domain socket. One
// accept thread hands each connection to the serve thread pool
// (ThreadPool::submit), so concurrent clients multiplex onto the same
// workers the batch engine uses; each connection speaks ara.rpc.v1
// (daemon/rpc.hpp) and each request runs inside its own error barrier — a
// crashing request answers `ok:false` and the daemon keeps serving.
//
// Warm state: one serve::ProjectState per project name, holding the
// dependency map and resident unit summaries across requests. `analyze`
// runs the dependency-aware incremental batch (changed units + transitive
// dependents only); `query` / `explain` answer from the latest published
// snapshot, including while a re-analysis is in flight. The total resident
// footprint is bounded by `max_resident_mb`: after each analyze, the
// least-recently-used projects are evicted (dropped entirely — the disk
// summary cache still makes their next analyze warm).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "serve/project.hpp"
#include "serve/threadpool.hpp"
#include "support/json.hpp"

namespace ara::daemon {

struct DaemonOptions {
  std::string socket_path;
  /// Request worker threads (connections served concurrently); 0 = hardware
  /// concurrency. Analyze requests additionally use BatchOptions::jobs
  /// workers inside run_batch.
  std::size_t jobs = 2;
  /// Resident-memory budget over all projects (snapshots + incremental
  /// state), in MiB. 0 = unbounded.
  std::size_t max_resident_mb = 512;
  /// Default unit-analysis parallelism for analyze requests that do not
  /// pass their own "jobs" param.
  std::size_t analyze_jobs = 1;
};

class DaemonServer {
 public:
  explicit DaemonServer(DaemonOptions opts);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// Binds the socket and starts the accept thread. False (with `error`
  /// set) when the socket cannot be created — e.g. another daemon is
  /// already listening on the path.
  [[nodiscard]] bool start(std::string* error);

  /// Blocks until a `shutdown` request (or stop()) ends the serve loop.
  void wait();

  /// Stops accepting, severs open connections, joins the accept thread.
  /// Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] const std::string& socket_path() const { return opts_.socket_path; }

  /// Lifetime counters (tests and `status`).
  [[nodiscard]] std::uint64_t requests() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t request_errors() const { return request_errors_.load(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_.load(); }

  /// One request line in, one response line out — the transport-free core,
  /// used directly by tests (no socket needed).
  [[nodiscard]] std::string handle_line(const std::string& line);

 private:
  void accept_loop();
  void serve_connection(int fd);

  [[nodiscard]] std::string handle_analyze(const json::Value& params);
  [[nodiscard]] std::string handle_query(const json::Value& params);
  [[nodiscard]] std::string handle_explain(const json::Value& params);
  [[nodiscard]] std::string handle_status();

  /// Looks up (optionally creating) the project's warm state.
  [[nodiscard]] std::shared_ptr<serve::ProjectState> project(const std::string& name,
                                                             bool create);
  /// Evicts least-recently-used projects until the resident total fits the
  /// budget; `keep` (the project just used) is never evicted.
  void enforce_budget(const std::string& keep);

  DaemonOptions opts_;
  int listen_fd_ = -1;
  bool owns_socket_file_ = false;  // bind succeeded; stop() may unlink the path
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;       // guards conn_fds_
  std::set<int> conn_fds_;   // open client connections (severed on stop)

  std::mutex projects_mu_;   // guards projects_
  std::map<std::string, std::shared_ptr<serve::ProjectState>> projects_;

  std::mutex done_mu_;       // wait()/shutdown handshake
  std::condition_variable done_cv_;
  bool done_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> request_errors_{0};
  std::atomic<std::uint64_t> evictions_{0};

  /// Last member on purpose: destroyed first, so its workers (connection
  /// handlers touching projects_ and the counters) drain before anything
  /// they use goes away.
  serve::ThreadPool pool_;
};

}  // namespace ara::daemon
