// Client side of ara.rpc.v1: a blocking connection to a running arad,
// used by `arac --daemon-connect`, the daemon tests and bench_daemon. One
// call() is one request line out, one response line in; ids are assigned
// monotonically and verified on the way back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.hpp"

namespace ara::daemon {

/// A parsed response: `ok` mirrors the wire field; `result` is the result
/// object on success, `error` the message otherwise.
struct RpcReply {
  std::uint64_t id = 0;
  bool ok = false;
  json::Value result;
  std::string error;
};

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connects to the daemon's Unix socket. False (with `error` set) when
  /// nothing is listening.
  [[nodiscard]] bool connect(const std::string& socket_path, std::string* error);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends `{"id":N,"method":...,"params":<params_object>}` and blocks for
  /// the response line. `params_object` must be serialized JSON ("{}" for
  /// none). nullopt on transport failure (daemon died mid-call).
  [[nodiscard]] std::optional<RpcReply> call(std::string_view method,
                                             const std::string& params_object);

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace ara::daemon
