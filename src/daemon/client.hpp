// Client side of ara.rpc.v1: a blocking connection to a running arad,
// used by `arac --daemon-connect`, the daemon tests and bench_daemon. One
// call() is one request line out, one response line in; ids are assigned
// monotonically and verified on the way back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/json.hpp"
#include "support/retry.hpp"

namespace ara::daemon {

/// A parsed response: `ok` mirrors the wire field; `result` is the result
/// object on success, `error` the message otherwise. Shed responses also
/// carry `code` ("overloaded"/"shutting_down"/...) and the daemon's backoff
/// hint `retry_after_ms` (-1 when absent).
struct RpcReply {
  std::uint64_t id = 0;
  bool ok = false;
  json::Value result;
  std::string error;
  std::string code;
  std::int64_t retry_after_ms = -1;

  /// Whether a retry can succeed: the daemon shed this request (overload or
  /// drain), it did not deterministically fail it.
  [[nodiscard]] bool transient() const {
    return !ok && (code == "overloaded" || code == "shutting_down");
  }
};

/// Bounds for call_retry: how many total tries, and the backoff between
/// them. The daemon's `retry_after_ms` hint, when present, is honored as a
/// floor under the computed backoff.
struct RetryOptions {
  support::BackoffPolicy backoff;
  std::uint64_t seed = 0;  // decorrelates concurrent clients' jitter
};

class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connects to the daemon's Unix socket. False (with `error` set) when
  /// nothing is listening.
  [[nodiscard]] bool connect(const std::string& socket_path, std::string* error);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends `{"id":N,"method":...,"params":<params_object>}` and blocks for
  /// the response line. `params_object` must be serialized JSON ("{}" for
  /// none). nullopt on transport failure (daemon died mid-call).
  [[nodiscard]] std::optional<RpcReply> call(std::string_view method,
                                             const std::string& params_object);

  /// call() with bounded resilience: reconnects transparently when the
  /// transport drops (daemon restarted mid-call) and retries shed responses
  /// (`transient()`) with exponential backoff + jitter, honoring the
  /// daemon's `retry_after_ms` hint as a floor. Returns the first
  /// non-transient reply, or nullopt when every attempt failed. Safe for
  /// idempotent methods (all of ara.rpc.v1 is).
  [[nodiscard]] std::optional<RpcReply> call_retry(std::string_view method,
                                                   const std::string& params_object,
                                                   const RetryOptions& retry);

  /// Retries performed by call_retry over this client's lifetime
  /// (reconnects + backoff waits; tests and arac --verbose report it).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buffer_;       // bytes read past the last response line
  std::string socket_path_;  // remembered for call_retry's reconnects
  std::uint64_t retries_ = 0;
};

}  // namespace ara::daemon
