#include "daemon/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "daemon/rpc.hpp"
#include "obs/histogram.hpp"
#include "obs/provenance.hpp"
#include "obs/stats.hpp"
#include "rgn/region_row.hpp"
#include "support/faultinject.hpp"
#include "support/string_utils.hpp"

namespace ara::daemon {

namespace fs = std::filesystem;

ARA_STATISTIC(stat_requests, "daemon.requests", "RPC requests handled");
ARA_STATISTIC(stat_request_errors, "daemon.request_errors", "RPC requests answered ok:false");
ARA_STATISTIC(stat_evictions, "daemon.project_evictions",
              "Warm project states evicted by the memory budget");
ARA_STATISTIC(stat_shed_requests, "daemon.overload.shed_requests",
              "Requests shed with overloaded/shutting_down instead of queuing");
ARA_STATISTIC(stat_shed_connections, "daemon.shed.connections",
              "Connections answered overloaded and closed at accept (queue full)");
ARA_STATISTIC(stat_too_large, "daemon.overload.too_large",
              "Request lines rejected for exceeding max_request_bytes");
ARA_STATISTIC(stat_deadline_expired, "daemon.deadline.expired",
              "Analyze units demoted to structured timeouts by a request deadline");
ARA_STATISTIC(stat_idle_closed, "daemon.overload.idle_closed",
              "Connections closed by the per-connection idle/read timeout");
ARA_STATISTIC(stat_accept_retries, "daemon.overload.accept_retries",
              "Transient accept() failures (EMFILE/ENFILE/...) absorbed by retry");
ARA_HISTOGRAM(hist_request, "daemon.request_ns", "RPC request latency (all methods)", "ns");
ARA_HISTOGRAM(hist_analyze, "daemon.analyze_ns", "analyze request latency", "ns");
ARA_HISTOGRAM(hist_query, "daemon.query_ns", "query request latency", "ns");
ARA_HISTOGRAM(hist_explain, "daemon.explain_ns", "explain request latency", "ns");
ARA_HISTOGRAM(hist_queue_depth, "daemon.queue_depth",
              "Accepted-but-unserved connections, sampled at each accept", "conns");

namespace {

/// Logical request failure (unknown project, bad params): caught by
/// handle_line and turned into an ok:false response.
struct RequestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// False when the client went away or stopped draining (a send timeout set
/// by connection_timeouts() surfaces as EAGAIN): the caller severs.
bool write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a client that closed its end must cost us a false
    // return, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Arms SO_RCVTIMEO/SO_SNDTIMEO on an accepted connection so a stalled
/// client (never completing a request, never draining a response) unblocks
/// the worker instead of pinning it. Best-effort: a failed setsockopt
/// leaves the fd blocking, which only costs the timeout guarantee.
void connection_timeouts(int fd, std::uint64_t timeout_ms) {
  if (timeout_ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// True when a live daemon is already answering on `path`.
bool socket_alive(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const bool alive =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return alive;
}

}  // namespace

DaemonServer::DaemonServer(DaemonOptions opts)
    : opts_(std::move(opts)),
      // At least two request workers: with one, submit() runs inline on the
      // accept thread and a single slow client would block all accepts.
      pool_(std::max<std::size_t>(
          2, opts_.jobs != 0 ? opts_.jobs
                             : std::max<std::size_t>(1, std::thread::hardware_concurrency()))) {
  max_inflight_ = opts_.max_inflight != 0 ? opts_.max_inflight : pool_.size();
}

DaemonServer::~DaemonServer() { stop(); }

bool DaemonServer::start(std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) ::close(lfd);
    return false;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long: " + opts_.socket_path);
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  // A leftover socket file from a dead daemon would make bind() fail with
  // EADDRINUSE forever; a live daemon must win. Probe with a connect: only
  // an unanswered path is reclaimed.
  if (fs::exists(opts_.socket_path)) {
    if (socket_alive(opts_.socket_path)) {
      return fail("a daemon is already listening on " + opts_.socket_path);
    }
    std::error_code ec;
    fs::remove(opts_.socket_path, ec);
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("cannot create socket");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("cannot bind " + opts_.socket_path + ": " + std::strerror(errno));
  }
  owns_socket_file_ = true;
  if (::listen(listen_fd_, 16) != 0) {
    return fail("cannot listen on " + opts_.socket_path + ": " + std::strerror(errno));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void DaemonServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Descriptor exhaustion is an overload symptom, not a death sentence:
      // connections in flight will close and free fds. Back off briefly and
      // keep accepting instead of abandoning the listener.
      if ((errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) &&
          !stopping_.load()) {
        stat_accept_retries.bump();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener closed (stop()) or fatal: either way we are done
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connection_timeouts(fd, opts_.idle_timeout_ms);
    if (ARA_FAILPOINT("daemon.accept").action == fi::Action::IoError) {
      ::close(fd);  // injected accept-path failure: the connection is lost
      continue;
    }
    if (draining_.load()) {
      write_all(fd, error_response(0, kCodeShuttingDown, "daemon is draining",
                                   static_cast<std::int64_t>(opts_.retry_after_ms)));
      ::close(fd);
      continue;
    }
    // The admission gate for the connection backlog: the queue at its
    // budget means this connection would wait behind work that may never
    // drain (connections pin workers for their lifetime). The bound is
    // hard — no secondary "are the workers really busy" condition, which
    // would let a backlog creep past the budget through idle moments. Shed
    // now, from the (free) accept thread, so the client hears `overloaded`
    // in milliseconds instead of queuing behind heavy work.
    const std::size_t depth = queued_.load();
    hist_queue_depth.record(depth);
    if (opts_.max_queue != 0 && depth >= opts_.max_queue) {
      shed_connections_.fetch_add(1);
      stat_shed_connections.bump();
      write_all(fd, error_response(0, kCodeOverloaded, "connection queue is full",
                                   static_cast<std::int64_t>(opts_.retry_after_ms)));
      ::close(fd);
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
    }
    queued_.fetch_add(1);
    pool_.submit([this, fd] { serve_connection(fd); });
  }
}

void DaemonServer::serve_connection(int fd) {
  queued_.fetch_sub(1);
  using clock = std::chrono::steady_clock;
  const auto line_budget = std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::string buffer;
  clock::time_point line_start{};  // first byte of the pending partial line
  char chunk[4096];
  bool severed = false;
  while (!stopping_.load() && !severed) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired: an idle keep-alive just goes away; a stalled
      // partial request is a wedged (or hostile) client either way.
      stat_idle_closed.bump();
      break;
    }
    if (n <= 0) break;  // EOF or error: client is done
    if (ARA_FAILPOINT("daemon.read").action == fi::Action::IoError) break;
    if (buffer.empty()) line_start = clock::now();
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      if (line.size() > opts_.max_request_bytes) {
        too_large_.fetch_add(1);
        stat_too_large.bump();
        write_all(fd, error_response(0, kCodeTooLarge,
                                     "request line exceeds " +
                                         std::to_string(opts_.max_request_bytes) + " bytes",
                                     -1));
        severed = true;
        break;
      }
      // One in-flight request, from parse through the response write: what
      // the admission budget counts and the graceful drain waits on.
      // busy_ covers exactly the handling: it must drop before the response
      // leaves, or a client that sees its reply and immediately sends the
      // next request races the decrement and gets spuriously shed. The
      // write is tracked separately (writing_) so the graceful drain still
      // waits for responses to finish going out.
      busy_.fetch_add(1);
      std::string response = handle_line(line);
      busy_.fetch_sub(1);
      if (ARA_FAILPOINT("daemon.respond").action == fi::Action::IoError) {
        severed = true;  // injected respond fault: client sees a dead socket
        break;
      }
      writing_.fetch_add(1);
      const bool wrote = write_all(fd, response);
      writing_.fetch_sub(1);
      if (!wrote) {
        severed = true;
        break;
      }
    }
    if (severed) break;
    buffer.erase(0, start);
    // An incomplete request keeps growing or trickling: cap both its size
    // (framing DoS) and its age (slow-loris holding a worker hostage).
    if (!buffer.empty()) {
      if (buffer.size() > opts_.max_request_bytes) {
        too_large_.fetch_add(1);
        stat_too_large.bump();
        write_all(fd, error_response(0, kCodeTooLarge,
                                     "request line exceeds " +
                                         std::to_string(opts_.max_request_bytes) + " bytes",
                                     -1));
        break;
      }
      if (opts_.idle_timeout_ms != 0 && clock::now() - line_start > line_budget) {
        stat_idle_closed.bump();
        break;
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::string DaemonServer::handle_line(const std::string& line) {
  requests_.fetch_add(1);
  stat_requests.bump();
  const obs::ScopedLatency lat(hist_request);

  std::uint64_t id = 0;
  std::string parse_error;
  const std::optional<RpcRequest> req = parse_request(line, &parse_error, &id);
  if (!req.has_value()) {
    request_errors_.fetch_add(1);
    stat_request_errors.bump();
    return error_response(id, parse_error);
  }

  if (std::optional<std::string> shed = admit(*req)) {
    shed_requests_.fetch_add(1);
    stat_shed_requests.bump();
    return *std::move(shed);
  }

  // The per-request error barrier: no request — malformed, hostile, or
  // tripping an internal bug — takes the daemon down. The failure becomes
  // this request's ok:false response and the serve loop continues.
  try {
    if (const fi::Fired f = ARA_FAILPOINT("daemon.handle", req->method);
        f.action == fi::Action::IoError) {
      throw fi::IoFault("injected daemon.handle fault");
    }
    if (req->method == "analyze") {
      const obs::ScopedLatency mlat(hist_analyze);
      return ok_response(req->id, handle_analyze(req->params));
    }
    if (req->method == "query") {
      const obs::ScopedLatency mlat(hist_query);
      return ok_response(req->id, handle_query(req->params));
    }
    if (req->method == "explain") {
      const obs::ScopedLatency mlat(hist_explain);
      return ok_response(req->id, handle_explain(req->params));
    }
    if (req->method == "status") return ok_response(req->id, handle_status());
    if (req->method == "shutdown") {
      const bool drain = param_bool(req->params, "drain", false);
      request_shutdown(drain);
      return ok_response(req->id, drain ? "{\"stopping\":true,\"drain\":true}"
                                        : "{\"stopping\":true}");
    }
    throw RequestError("unknown method '" + req->method + "'");
  } catch (const std::exception& e) {
    request_errors_.fetch_add(1);
    stat_request_errors.bump();
    return error_response(req->id, e.what());
  } catch (...) {
    request_errors_.fetch_add(1);
    stat_request_errors.bump();
    return error_response(req->id, "internal error (non-standard exception)");
  }
}

std::optional<std::string> DaemonServer::admit(const RpcRequest& req) {
  // status stays answerable under any load (it is how overload is observed)
  // and shutdown must always get through; everything else is shed work.
  if (req.method == "status" || req.method == "shutdown") return std::nullopt;
  if (draining_.load()) {
    return error_response(req.id, kCodeShuttingDown, "daemon is draining",
                          static_cast<std::int64_t>(opts_.retry_after_ms));
  }
  // busy_ counts this request too when it arrived over a socket (the
  // connection's BusyScope), so strictly-greater is "more than the budget
  // running concurrently". Direct handle_line callers (tests) see busy_ ==
  // 0 and are always admitted.
  if (busy_.load() > max_inflight_) {
    return error_response(req.id, kCodeOverloaded,
                          "in-flight budget exhausted (" +
                              std::to_string(max_inflight_) + " requests)",
                          static_cast<std::int64_t>(opts_.retry_after_ms));
  }
  return std::nullopt;
}

std::shared_ptr<serve::ProjectState> DaemonServer::project(const std::string& name,
                                                           bool create) {
  const std::lock_guard<std::mutex> lock(projects_mu_);
  const auto it = projects_.find(name);
  if (it != projects_.end()) {
    it->second->touch();
    return it->second;
  }
  if (!create) {
    throw RequestError("unknown project '" + name +
                       "' (run analyze first, or it was evicted by the memory budget)");
  }
  auto state = std::make_shared<serve::ProjectState>(name);
  projects_.emplace(name, state);
  return state;
}

void DaemonServer::enforce_budget(const std::string& keep) {
  if (opts_.max_resident_mb == 0) return;
  const std::size_t budget = opts_.max_resident_mb * 1024 * 1024;
  const std::lock_guard<std::mutex> lock(projects_mu_);
  for (;;) {
    std::size_t total = 0;
    std::map<std::string, std::shared_ptr<serve::ProjectState>>::iterator lru =
        projects_.end();
    for (auto it = projects_.begin(); it != projects_.end(); ++it) {
      total += it->second->resident_bytes();
      if (it->first == keep) continue;
      if (lru == projects_.end() || it->second->last_used() < lru->second->last_used()) {
        lru = it;
      }
    }
    if (total <= budget || lru == projects_.end()) return;
    // Dropping the map entry is the whole eviction: in-flight requests
    // holding the shared_ptr finish on the old state, the disk summary
    // cache keeps the next analyze warm.
    projects_.erase(lru);
    evictions_.fetch_add(1);
    stat_evictions.bump();
  }
}

std::string DaemonServer::handle_analyze(const json::Value& params) {
  const std::string name = param_string(params, "project", "default");

  std::vector<serve::SourceBuffer> sources;
  if (const json::Value* list = params.find("sources"); list != nullptr && list->is_array()) {
    for (const json::Value& s : list->array) {
      if (!s.is_object()) throw RequestError("'sources' entries must be objects");
      serve::SourceBuffer buf;
      buf.name = param_string(s, "name");
      buf.text = param_string(s, "text");
      const std::string lang = param_string(s, "lang", "fortran");
      buf.lang = (lang == "c" || lang == "C") ? Language::C : Language::Fortran;
      if (buf.name.empty()) throw RequestError("'sources' entries need a 'name'");
      sources.push_back(std::move(buf));
    }
  } else if (const json::Value* paths = params.find("paths");
             paths != nullptr && paths->is_array()) {
    for (const json::Value& p : paths->array) {
      if (!p.is_string()) throw RequestError("'paths' entries must be strings");
      std::optional<serve::SourceBuffer> buf = serve::read_source(p.string, nullptr);
      if (!buf.has_value()) throw RequestError("cannot read " + p.string);
      sources.push_back(std::move(*buf));
    }
  }
  if (sources.empty()) throw RequestError("analyze needs 'sources' or 'paths'");

  serve::BatchOptions bopts;
  bopts.jobs = static_cast<std::size_t>(
      param_u64(params, "jobs", static_cast<std::uint64_t>(opts_.analyze_jobs)));
  bopts.cache_dir = param_string(params, "cache_dir");
  bopts.use_cache = param_bool(params, "use_cache", true);
  bopts.interprocedural = param_bool(params, "ipa", true);

  // Deadline: the request's own deadline_ms, else the daemon default.
  // Enforced through the per-unit wall-clock watchdog (support/limits), so
  // an over-deadline unit demotes to a structured Timeout failure inside
  // the engine's barrier — never an unbounded analyze.
  const std::uint64_t deadline_ms =
      param_u64(params, "deadline_ms", opts_.default_deadline_ms);
  if (deadline_ms > 0) {
    const auto deadline = std::chrono::milliseconds(deadline_ms);
    if (bopts.limits.unit_timeout.count() == 0 || deadline < bopts.limits.unit_timeout) {
      bopts.limits.unit_timeout = deadline;
    }
  }

  const std::shared_ptr<serve::ProjectState> state = project(name, /*create=*/true);
  const std::shared_ptr<const serve::ProjectSnapshot> snap = state->analyze(sources, bopts);
  if (ARA_FAILPOINT("daemon.publish", name).action == fi::Action::IoError) {
    throw fi::IoFault("injected daemon.publish fault");
  }
  enforce_budget(name);

  std::uint64_t timeout_units = 0;
  for (const serve::UnitReport& unit : snap->units) {
    if (unit.failure.has_value() && unit.failure->kind == serve::FailureKind::Timeout) {
      ++timeout_units;
    }
  }
  if (timeout_units > 0 && deadline_ms > 0) {
    deadline_expired_.fetch_add(timeout_units);
    stat_deadline_expired.bump(timeout_units);
  }

  std::string diagnostics;
  for (const serve::UnitReport& unit : snap->units) diagnostics += unit.diagnostics;
  diagnostics += snap->link_diagnostics;

  std::ostringstream os;
  os << "{\"project\":\"" << json::escape(name) << "\",\"generation\":" << snap->generation
     << ",\"ok\":" << (snap->ok ? "true" : "false")
     << ",\"partial\":" << (snap->partial ? "true" : "false")
     << ",\"units\":" << snap->units.size() << ",\"failed_units\":" << snap->failed_units
     << ",\"timeout_units\":" << timeout_units
     << ",\"cache_hits\":" << snap->cache_hits << ",\"cache_misses\":" << snap->cache_misses
     << ",\"resident_hits\":" << snap->resident_hits
     << ",\"invalidated_units\":" << snap->invalidated_units
     << ",\"rows\":" << snap->rows.size() << ",\"diagnostics\":\""
     << json::escape(diagnostics) << "\"}";
  return os.str();
}

std::string DaemonServer::handle_query(const json::Value& params) {
  const std::string name = param_string(params, "project", "default");
  const std::string artifact = param_string(params, "artifact", "table");
  const std::string array = to_lower(param_string(params, "array"));

  const std::shared_ptr<serve::ProjectState> state = project(name, /*create=*/false);
  const std::shared_ptr<const serve::ProjectSnapshot> snap = state->snapshot();
  if (snap == nullptr) throw RequestError("project '" + name + "' has no completed analysis");

  std::string text;
  if (artifact == "table") {
    if (array.empty()) {
      text = rgn::render_table(snap->rows);
    } else {
      std::vector<rgn::RegionRow> rows;
      for (const rgn::RegionRow& r : snap->rows) {
        if (to_lower(r.array) == array) rows.push_back(r);
      }
      text = rgn::render_table(rows);
    }
  } else if (artifact == "rgn") {
    text = snap->rgn_text;
  } else if (artifact == "dgn") {
    text = snap->dgn_text;
  } else if (artifact == "cfg") {
    text = snap->cfg_text;
  } else if (artifact == "provenance") {
    text = snap->provenance_jsonl;
  } else {
    throw RequestError("unknown artifact '" + artifact +
                       "' (want table, rgn, dgn, cfg or provenance)");
  }

  std::ostringstream os;
  os << "{\"project\":\"" << json::escape(name) << "\",\"generation\":" << snap->generation
     << ",\"ok\":" << (snap->ok ? "true" : "false")
     << ",\"partial\":" << (snap->partial ? "true" : "false") << ",\"text\":\""
     << json::escape(text) << "\"}";
  return os.str();
}

std::string DaemonServer::handle_explain(const json::Value& params) {
  const std::string name = param_string(params, "project", "default");
  const std::string target = param_string(params, "target");
  const bool loops = param_bool(params, "loops", false);

  const std::shared_ptr<serve::ProjectState> state = project(name, /*create=*/false);
  const std::shared_ptr<const serve::ProjectSnapshot> snap = state->snapshot();
  if (snap == nullptr) throw RequestError("project '" + name + "' has no completed analysis");

  const std::string text = obs::render_explain(snap->provenance, target, loops);
  std::ostringstream os;
  os << "{\"project\":\"" << json::escape(name) << "\",\"generation\":" << snap->generation
     << ",\"text\":\"" << json::escape(text) << "\"}";
  return os.str();
}

std::string DaemonServer::handle_status() {
  std::ostringstream os;
  os << "{\"schema\":\"" << kRpcSchema << "\",\"requests\":" << requests_.load()
     << ",\"request_errors\":" << request_errors_.load()
     << ",\"evictions\":" << evictions_.load()
     << ",\"max_resident_mb\":" << opts_.max_resident_mb << ",\"overload\":{"
     << "\"draining\":" << (draining_.load() ? "true" : "false")
     << ",\"inflight\":" << busy_.load() << ",\"max_inflight\":" << max_inflight_
     << ",\"queued\":" << queued_.load() << ",\"max_queue\":" << opts_.max_queue
     << ",\"shed_requests\":" << shed_requests_.load()
     << ",\"shed_connections\":" << shed_connections_.load()
     << ",\"too_large\":" << too_large_.load()
     << ",\"deadline_expired\":" << deadline_expired_.load() << "},\"projects\":[";
  {
    const std::lock_guard<std::mutex> lock(projects_mu_);
    bool first = true;
    for (const auto& [name, state] : projects_) {
      if (!first) os << ',';
      first = false;
      const std::shared_ptr<const serve::ProjectSnapshot> snap = state->snapshot();
      os << "{\"name\":\"" << json::escape(name)
         << "\",\"generation\":" << (snap != nullptr ? snap->generation : 0)
         << ",\"resident_bytes\":" << state->resident_bytes() << "}";
    }
  }
  os << "],\"latency\":{";
  bool first = true;
  for (const obs::HistogramSnapshot& h :
       obs::HistogramRegistry::instance().snapshot(/*nonempty_only=*/true)) {
    if (h.name.rfind("daemon.", 0) != 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json::escape(h.name) << "\":{\"count\":" << h.count
       << ",\"p50\":" << h.percentile(0.50) << ",\"p99\":" << h.percentile(0.99) << "}";
  }
  os << "}}";
  return os.str();
}

void DaemonServer::wait() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [this] { return done_; });
}

void DaemonServer::request_shutdown(bool drain) {
  if (drain) draining_.store(true);
  {
    const std::lock_guard<std::mutex> lock(done_mu_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void DaemonServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (draining_.load() && opts_.drain_ms > 0) {
    // Graceful drain: give in-flight requests (busy_ spans handling through
    // the response write) up to the drain budget to finish before severing.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(opts_.drain_ms);
    while ((busy_.load() > 0 || writing_.load() > 0) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  {
    // Sever open connections so handlers blocked in read() unblock; the
    // handlers themselves close the fds on their way out.
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    const std::lock_guard<std::mutex> lock(done_mu_);
    done_ = true;
  }
  done_cv_.notify_all();
  // Only unlink a socket file this server bound: a DaemonServer whose
  // start() was refused because a live daemon owns the path must not
  // delete that daemon's socket on its way out.
  if (owns_socket_file_) {
    std::error_code ec;
    fs::remove(opts_.socket_path, ec);
  }
}

}  // namespace ara::daemon
