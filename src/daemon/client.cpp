#include "daemon/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

namespace ara::daemon {

DaemonClient::~DaemonClient() { close(); }

bool DaemonClient::connect(const std::string& socket_path, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    close();
    return false;
  };
  close();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("cannot create socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("cannot connect to " + socket_path + ": " + std::strerror(errno));
  }
  socket_path_ = socket_path;
  return true;
}

void DaemonClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::optional<RpcReply> DaemonClient::call(std::string_view method,
                                           const std::string& params_object) {
  if (fd_ < 0) return std::nullopt;
  const std::uint64_t id = next_id_++;

  std::ostringstream os;
  os << "{\"id\":" << id << ",\"method\":\"" << method << "\",\"params\":" << params_object
     << "}\n";
  const std::string request = os.str();

  std::size_t off = 0;
  while (off < request.size()) {
    // MSG_NOSIGNAL: a daemon that died mid-call must surface as a nullopt
    // (so call_retry can reconnect), not as a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }

  // One response line per request; anything past the newline stays buffered
  // (the daemon never sends unsolicited data, but the read can split lines).
  std::string line;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      break;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;  // daemon went away mid-call
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }

  const std::optional<json::Value> v = json::parse(line);
  if (!v.has_value() || !v->is_object()) return std::nullopt;

  RpcReply reply;
  if (const json::Value* rid = v->find("id"); rid != nullptr && rid->is_number()) {
    reply.id = static_cast<std::uint64_t>(rid->number);
  }
  if (const json::Value* ok = v->find("ok"); ok != nullptr && ok->is_bool()) {
    reply.ok = ok->boolean;
  }
  if (reply.ok) {
    if (const json::Value* result = v->find("result"); result != nullptr) {
      reply.result = *result;
    }
  } else if (const json::Value* err = v->find("error");
             err != nullptr && err->is_string()) {
    reply.error = err->string;
  }
  if (const json::Value* code = v->find("code"); code != nullptr && code->is_string()) {
    reply.code = code->string;
  }
  if (const json::Value* after = v->find("retry_after_ms");
      after != nullptr && after->is_number() && after->number >= 0) {
    reply.retry_after_ms = static_cast<std::int64_t>(after->number);
  }
  return reply;
}

std::optional<RpcReply> DaemonClient::call_retry(std::string_view method,
                                                 const std::string& params_object,
                                                 const RetryOptions& retry) {
  const int attempts = retry.backoff.attempts < 1 ? 1 : retry.backoff.attempts;
  for (int attempt = 1;; ++attempt) {
    if (fd_ < 0 && !socket_path_.empty()) {
      (void)connect(socket_path_, nullptr);  // transparent reconnect
    }
    std::optional<RpcReply> reply = call(method, params_object);
    if (reply.has_value() && !reply->transient()) return reply;

    if (attempt >= attempts) return reply;  // exhausted: last shed reply or nullopt
    ++retries_;
    // Transport loss severs the connection; reconnect happens at the top of
    // the next attempt after the backoff (an arad restart needs a moment to
    // re-bind its socket).
    if (!reply.has_value()) close();
    std::chrono::milliseconds delay =
        support::backoff_ms(retry.backoff, attempt, retry.seed);
    if (reply.has_value() && reply->retry_after_ms >= 0) {
      delay = std::max(delay, std::chrono::milliseconds(reply->retry_after_ms));
    }
    std::this_thread::sleep_for(delay);
  }
}

}  // namespace ara::daemon
