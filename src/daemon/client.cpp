#include "daemon/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace ara::daemon {

DaemonClient::~DaemonClient() { close(); }

bool DaemonClient::connect(const std::string& socket_path, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    close();
    return false;
  };
  close();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("cannot create socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("cannot connect to " + socket_path + ": " + std::strerror(errno));
  }
  return true;
}

void DaemonClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::optional<RpcReply> DaemonClient::call(std::string_view method,
                                           const std::string& params_object) {
  if (fd_ < 0) return std::nullopt;
  const std::uint64_t id = next_id_++;

  std::ostringstream os;
  os << "{\"id\":" << id << ",\"method\":\"" << method << "\",\"params\":" << params_object
     << "}\n";
  const std::string request = os.str();

  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd_, request.data() + off, request.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }

  // One response line per request; anything past the newline stays buffered
  // (the daemon never sends unsolicited data, but the read can split lines).
  std::string line;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      break;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;  // daemon went away mid-call
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }

  const std::optional<json::Value> v = json::parse(line);
  if (!v.has_value() || !v->is_object()) return std::nullopt;

  RpcReply reply;
  if (const json::Value* rid = v->find("id"); rid != nullptr && rid->is_number()) {
    reply.id = static_cast<std::uint64_t>(rid->number);
  }
  if (const json::Value* ok = v->find("ok"); ok != nullptr && ok->is_bool()) {
    reply.ok = ok->boolean;
  }
  if (reply.ok) {
    if (const json::Value* result = v->find("result"); result != nullptr) {
      reply.result = *result;
    }
  } else if (const json::Value* err = v->find("error");
             err != nullptr && err->is_string()) {
    reply.error = err->string;
  }
  return reply;
}

}  // namespace ara::daemon
