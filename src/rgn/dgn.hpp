// The `.dgn` project file. Compiling with `-dragon` makes OpenUH emit
// ".dgn, .cfg and .rgn files" (§V-B step 2); the user then "invokes Dragon
// and loads the .dgn project". Our .dgn carries the program inventory: source
// files, procedures, and the IPA call graph (nodes = procedures, edges =
// call sites), which Dragon renders as Fig 11.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ara::rgn {

struct DgnProc {
  std::string name;
  std::string file;  // source file name
  std::uint32_t line = 0;
  bool is_entry = false;  // a main program / root of the call graph
  friend bool operator==(const DgnProc&, const DgnProc&) = default;
};

struct DgnEdge {
  std::string caller;
  std::string callee;
  std::uint32_t line = 0;  // call-site line in the caller
  friend bool operator==(const DgnEdge&, const DgnEdge&) = default;
};

struct DgnProject {
  std::string name;
  std::vector<std::string> files;      // registered source files
  std::vector<std::string> languages;  // parallel to files ("Fortran"/"C")
  std::vector<DgnProc> procedures;
  std::vector<DgnEdge> edges;

  [[nodiscard]] const DgnProc* find_proc(const std::string& name) const;
  friend bool operator==(const DgnProject&, const DgnProject&) = default;
};

[[nodiscard]] std::string write_dgn(const DgnProject& project);
[[nodiscard]] bool parse_dgn(const std::string& text, DgnProject& out,
                             std::string* error = nullptr);

}  // namespace ara::rgn
