#include "rgn/dgn.hpp"

#include <charconv>
#include <sstream>

#include "support/string_utils.hpp"

namespace ara::rgn {

const DgnProc* DgnProject::find_proc(const std::string& name) const {
  for (const DgnProc& p : procedures) {
    if (iequals(p.name, name)) return &p;
  }
  return nullptr;
}

std::string write_dgn(const DgnProject& project) {
  std::ostringstream os;
  os << "DGN 1\n";
  os << "project " << project.name << '\n';
  os << "[files]\n";
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    os << project.files[i] << '|'
       << (i < project.languages.size() ? project.languages[i] : "Fortran") << '\n';
  }
  os << "[procedures]\n";
  for (const DgnProc& p : project.procedures) {
    os << p.name << '|' << p.file << '|' << p.line << '|' << (p.is_entry ? 1 : 0) << '\n';
  }
  os << "[edges]\n";
  for (const DgnEdge& e : project.edges) {
    os << e.caller << '|' << e.callee << '|' << e.line << '\n';
  }
  return os.str();
}

namespace {

bool to_u32(const std::string& s, std::uint32_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

bool parse_dgn(const std::string& text, DgnProject& out, std::string* error) {
  auto fail = [&](std::size_t line_no, std::string_view why) {
    if (error != nullptr) *error = "line " + std::to_string(line_no) + ": " + std::string(why);
    return false;
  };
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  enum class Section { None, Files, Procs, Edges } section = Section::None;
  bool saw_magic = false;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string trimmed{trim(line)};
    if (trimmed.empty()) continue;
    if (!saw_magic) {
      if (trimmed != "DGN 1") return fail(line_no, "missing DGN magic");
      saw_magic = true;
      continue;
    }
    if (trimmed.rfind("project ", 0) == 0) {
      out.name = trimmed.substr(8);
      continue;
    }
    if (trimmed == "[files]") {
      section = Section::Files;
      continue;
    }
    if (trimmed == "[procedures]") {
      section = Section::Procs;
      continue;
    }
    if (trimmed == "[edges]") {
      section = Section::Edges;
      continue;
    }
    const std::vector<std::string> parts = split(trimmed, '|');
    switch (section) {
      case Section::Files:
        if (parts.size() != 2) return fail(line_no, "bad [files] entry");
        out.files.push_back(parts[0]);
        out.languages.push_back(parts[1]);
        break;
      case Section::Procs: {
        if (parts.size() != 4) return fail(line_no, "bad [procedures] entry");
        DgnProc p;
        p.name = parts[0];
        p.file = parts[1];
        if (!to_u32(parts[2], p.line)) return fail(line_no, "bad procedure line");
        p.is_entry = parts[3] == "1";
        out.procedures.push_back(std::move(p));
        break;
      }
      case Section::Edges: {
        if (parts.size() != 3) return fail(line_no, "bad [edges] entry");
        DgnEdge e;
        e.caller = parts[0];
        e.callee = parts[1];
        if (!to_u32(parts[2], e.line)) return fail(line_no, "bad edge line");
        out.edges.push_back(std::move(e));
        break;
      }
      case Section::None:
        return fail(line_no, "entry outside any section");
    }
  }
  return saw_magic || fail(0, "empty .dgn file");
}

}  // namespace ara::rgn
