// The row format of the `.rgn` comma-separated file the compiler extension
// emits ("We output these information to a comma separated plain file .rgn,
// where each row maintains information about each region per access mode",
// §IV-C) and that Dragon's array analysis graph displays (Fig 9's columns:
// Array, File, Mode, References, Dims, LB, UB, Stride, Element size,
// Data_type, Dim_size, Tot_size, Size_bytes, Mem_Loc, Acc_density).
//
// Conventions reproduced from the paper:
//  * one row per region per access mode; References is the total count for
//    the row's (scope, array, mode) group (Fig 9 repeats it on every row);
//  * multi-dimensional LB/UB/Stride and Dim_size pack per-dimension values
//    with '|' (the paper renders Dim_size as "64|65|65|5"); LB/UB/Stride are
//    in *source* order while Dim_size is in WHIRL row-major order, exactly
//    as Fig 14 shows;
//  * Mode adds the interprocedural variants IDEF/IUSE used in Fig 1
//    ("Call P1(A,j)  !DEF of A(1:100,1:100)");
//  * Acc_density is the integer (truncated) percentage
//    floor(100 * References / Size_bytes); variable-length arrays display
//    size zero and density zero;
//  * Mem_Loc is lowercase hex without 0x; a FORMAL's Mem_Loc resolves to the
//    address of the actual bound to it, "to find arrays pointing to the same
//    memory location".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ara::rgn {

struct RegionRow {
  std::string scope;      // enclosing procedure name, or "@" for globals
  std::string array;      // array name
  std::string file;       // object-file name of the accessing TU (e.g. verify.o)
  std::string mode;       // USE / DEF / FORMAL / PASSED / IUSE / IDEF
  std::uint64_t references = 0;
  std::uint32_t dims = 0;
  std::string lb;          // per-dim '|'-packed, source order
  std::string ub;
  std::string stride;
  std::int64_t element_size = 0;  // negative = non-contiguous (F90)
  std::string data_type;          // int / double / char / ...
  std::string dim_size;           // per-dim '|'-packed, row-major order
  std::int64_t tot_size = 0;      // total elements (0 when variable-length)
  std::int64_t size_bytes = 0;    // allocated bytes (0 when variable-length)
  std::string mem_loc;            // hex, no 0x
  std::int64_t acc_density = 0;   // floor(100 * references / size_bytes)
  std::string image;              // coarray co-subscript (RUSE/RDEF rows only)
  std::uint32_t line = 0;         // source line of the access (browsing aid)

  friend bool operator==(const RegionRow&, const RegionRow&) = default;
};

/// floor(100 * refs / bytes); 0 when bytes == 0 (variable-length arrays).
[[nodiscard]] std::int64_t access_density_pct(std::uint64_t refs, std::int64_t bytes);

/// Exact (floating) access density for ranking hotspots; 0 when bytes == 0.
[[nodiscard]] double access_density_exact(std::uint64_t refs, std::int64_t bytes);

/// Compact console rendering of the region rows (the full 19-column CSV
/// lives in the .rgn export; this is the browsing view shown by `arac` and
/// served by the daemon's `query` method).
[[nodiscard]] std::string render_table(const std::vector<RegionRow>& rows);

/// Serializes rows to `.rgn` CSV text (header line + one line per row).
[[nodiscard]] std::string write_rgn(const std::vector<RegionRow>& rows);

/// Parses `.rgn` CSV text; returns false on malformed input.
[[nodiscard]] bool parse_rgn(const std::string& text, std::vector<RegionRow>& out,
                             std::string* error = nullptr);

}  // namespace ara::rgn
