#include "rgn/region_row.hpp"

#include <charconv>

#include "obs/stats.hpp"
#include "support/csv.hpp"
#include "support/text_table.hpp"

namespace ara::rgn {

ARA_STATISTIC(stat_rows_emitted, "rgn.rows_emitted", "Region rows written to .rgn output");

namespace {

constexpr std::size_t kColumns = 19;

const char* kHeader[kColumns] = {
    "Scope",      "Array",    "File",     "Mode",     "References", "Dims",
    "LB",         "UB",       "Stride",   "Element_size", "Data_type", "Dim_size",
    "Tot_size",   "Size_bytes", "Mem_Loc", "Acc_density", "Image",    "Line",
    "Version",
};

template <typename T>
bool parse_int(const std::string& s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::int64_t access_density_pct(std::uint64_t refs, std::int64_t bytes) {
  if (bytes <= 0) return 0;
  return static_cast<std::int64_t>(refs * 100 / static_cast<std::uint64_t>(bytes));
}

double access_density_exact(std::uint64_t refs, std::int64_t bytes) {
  if (bytes <= 0) return 0.0;
  return static_cast<double>(refs) / static_cast<double>(bytes);
}

std::string render_table(const std::vector<RegionRow>& rows) {
  TextTable table;
  table.set_header({"Scope", "Array", "Mode", "Refs", "LB", "UB", "Stride", "Line"});
  for (const RegionRow& r : rows) {
    table.add_row({r.scope, r.array, r.mode, std::to_string(r.references), r.lb, r.ub, r.stride,
                   std::to_string(r.line)});
  }
  return table.render();
}

std::string write_rgn(const std::vector<RegionRow>& rows) {
  stat_rows_emitted.bump(rows.size());
  CsvWriter w;
  std::vector<std::string> header(kHeader, kHeader + kColumns);
  w.row(header);
  for (const RegionRow& r : rows) {
    w.row({r.scope, r.array, r.file, r.mode, std::to_string(r.references),
           std::to_string(r.dims), r.lb, r.ub, r.stride, std::to_string(r.element_size),
           r.data_type, r.dim_size, std::to_string(r.tot_size), std::to_string(r.size_bytes),
           r.mem_loc, std::to_string(r.acc_density), r.image, std::to_string(r.line), "2"});
  }
  return w.str();
}

bool parse_rgn(const std::string& text, std::vector<RegionRow>& out, std::string* error) {
  const auto rows = parse_csv(text);
  auto fail = [&](std::size_t line, std::string_view why) {
    if (error != nullptr) *error = "line " + std::to_string(line + 1) + ": " + std::string(why);
    return false;
  };
  if (rows.empty()) return fail(0, "empty .rgn file");
  if (rows[0].size() != kColumns || rows[0][0] != kHeader[0]) {
    return fail(0, "bad .rgn header");
  }
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& f = rows[i];
    if (f.size() != kColumns) return fail(i, "wrong column count");
    RegionRow r;
    r.scope = f[0];
    r.array = f[1];
    r.file = f[2];
    r.mode = f[3];
    if (!parse_int(f[4], r.references)) return fail(i, "bad References");
    if (!parse_int(f[5], r.dims)) return fail(i, "bad Dims");
    r.lb = f[6];
    r.ub = f[7];
    r.stride = f[8];
    if (!parse_int(f[9], r.element_size)) return fail(i, "bad Element_size");
    r.data_type = f[10];
    r.dim_size = f[11];
    if (!parse_int(f[12], r.tot_size)) return fail(i, "bad Tot_size");
    if (!parse_int(f[13], r.size_bytes)) return fail(i, "bad Size_bytes");
    r.mem_loc = f[14];
    if (!parse_int(f[15], r.acc_density)) return fail(i, "bad Acc_density");
    r.image = f[16];
    if (!parse_int(f[17], r.line)) return fail(i, "bad Line");
    out.push_back(std::move(r));
  }
  return true;
}

}  // namespace ara::rgn
