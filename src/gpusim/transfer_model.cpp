#include "gpusim/transfer_model.hpp"

namespace ara::gpusim {

double TransferModel::transfer_time(std::int64_t bytes, std::int64_t chunks) const {
  if (bytes <= 0) return 0.0;
  if (chunks < 1) chunks = 1;
  const double gather = chunks > 1 ? per_chunk_s * static_cast<double>(chunks) : 0.0;
  return latency_s + gather + static_cast<double>(bytes) / bandwidth_Bps;
}

std::int64_t region_bytes(const regions::Region& region, std::int64_t elem_size) {
  const auto n = region.element_count();
  if (!n) return 0;
  return *n * (elem_size < 0 ? -elem_size : elem_size);
}

std::int64_t contiguous_chunks(const regions::Region& region, const ir::Ty& ty) {
  if (!region.all_const() || !ty.is_array() || region.rank() != ty.rank()) return 1;
  // Walk dimensions from the fastest-varying (innermost in storage order)
  // outward. As long as a dimension is fully covered with stride 1, runs
  // coalesce; the first partially-covered dimension ends coalescing and all
  // remaining dimensions multiply the chunk count.
  const std::size_t n = ty.rank();
  std::int64_t chunks = 1;
  bool coalescing = true;
  for (std::size_t k = 0; k < n; ++k) {
    // Source-order position of the k-th fastest-varying dimension: C
    // (row-major) stores the last source dim fastest; Fortran the first.
    const std::size_t i = ty.row_major ? n - 1 - k : k;
    const regions::DimAccess& d = region.dim(i);
    const std::int64_t count = d.count().value_or(1);
    const auto extent = ty.dims[i].extent();
    const bool full = extent && d.stride == 1 && count == *extent;
    if (coalescing) {
      if (full) continue;  // whole dimension: still one run
      // Partial dimension: one run per non-adjacent step if strided,
      // otherwise the partial range is still a single run at this level.
      chunks *= d.stride == 1 || d.stride == -1 ? 1 : count;
      coalescing = false;
    } else {
      chunks *= count;
    }
  }
  return chunks;
}

OffloadResult simulate_offload(const OffloadScenario& scenario, const TransferModel& xfer,
                               const KernelModel& kernel_in) {
  KernelModel kernel = kernel_in;
  if (kernel.elements == 0) kernel.elements = scenario.kernel_elements;
  OffloadResult out;
  const double k = kernel.kernel_time();
  const double iters = scenario.iterations < 1 ? 1 : scenario.iterations;
  out.t_full = iters * (xfer.transfer_time(scenario.full_bytes, 1) + k);
  out.t_region =
      iters * (xfer.transfer_time(scenario.region_bytes, scenario.region_chunks) + k);
  out.speedup = out.t_region > 0 ? out.t_full / out.t_region : 0.0;
  return out;
}

double FusionModel::time_unfused(std::int64_t shared_bytes) const {
  return 2 * omp_startup_s +
         2 * static_cast<double>(shared_bytes) / mem_bandwidth_Bps + compute_time_s;
}

double FusionModel::time_fused(std::int64_t shared_bytes) const {
  return omp_startup_s + static_cast<double>(shared_bytes) / mem_bandwidth_Bps +
         compute_time_s;
}

}  // namespace ara::gpusim
