// Host<->device transfer cost model. Table IV of the paper reports speedups
// "taken on a 24 core cluster" from replacing `!$acc region copyin(u)` with
// `!$acc region copyin(u(1:3,1:5,1:10,1:4))` under the PGI accelerator
// compiler. That hardware and compiler are not available here, so — per the
// substitution rule — we model the experiment analytically with
// PCIe-gen2-era constants:
//     T(transfer) = latency * chunks + bytes / bandwidth
// where `chunks` counts the contiguous runs a strided/partial region
// decomposes into (sub-array copies are not single DMA bursts), plus a
// kernel-time term so the speedup saturates as compute begins to dominate.
// The *shape* of Table IV is preserved: sub-array offload wins by a factor
// that grows with the array/region size ratio and shrinks with kernel time.
#pragma once

#include <cstdint>

#include "ir/symtab.hpp"
#include "regions/region.hpp"

namespace ara::gpusim {

struct TransferModel {
  double latency_s = 15e-6;      // per-transfer DMA setup cost (PCIe gen2 era)
  double bandwidth_Bps = 5.2e9;  // effective host->device bandwidth
  // Non-contiguous sub-arrays are packed into one staging buffer on the
  // host before a single DMA (what accelerator runtimes do for sub-array
  // clauses); each contiguous run costs one gather step.
  double per_chunk_s = 1e-7;

  /// Time to move `bytes` that lie in `chunks` contiguous runs: one DMA plus
  /// the host-side gather.
  [[nodiscard]] double transfer_time(std::int64_t bytes, std::int64_t chunks = 1) const;
};

struct KernelModel {
  double time_per_element_s = 2.0e-9;  // effective per-element kernel cost
  std::int64_t elements = 0;

  [[nodiscard]] double kernel_time() const { return time_per_element_s * elements; }
};

/// Bytes covered by a constant region with the given element size, counting
/// strided elements only.
[[nodiscard]] std::int64_t region_bytes(const regions::Region& region, std::int64_t elem_size);

/// Number of contiguous runs a constant region decomposes into, given the
/// array's declared dims in source order and its storage order. A region
/// covering whole innermost dimensions coalesces; strides > 1 split every
/// element into its own chunk.
[[nodiscard]] std::int64_t contiguous_chunks(const regions::Region& region, const ir::Ty& ty);

struct OffloadScenario {
  std::int64_t full_bytes = 0;     // copyin(u): the whole array
  std::int64_t region_bytes = 0;   // copyin(u(...)): only the accessed portion
  std::int64_t region_chunks = 1;  // contiguous pieces of the sub-array copy
  std::int64_t kernel_elements = 0;
  int iterations = 1;              // transfers repeat per outer iteration
};

struct OffloadResult {
  double t_full = 0;    // whole-array copyin + kernel
  double t_region = 0;  // sub-array copyin + kernel
  double speedup = 0;   // t_full / t_region
};

[[nodiscard]] OffloadResult simulate_offload(const OffloadScenario& scenario,
                                             const TransferModel& xfer = {},
                                             const KernelModel& kernel = {});

/// Fig 13's fusion case: two loops reading the same region pay the memory
/// fetch and the `!$omp parallel` region startup twice; the fused loop pays
/// both once. Times are per execution of the (merged) loop nest.
struct FusionModel {
  double omp_startup_s = 6e-6;       // parallel-region fork/join overhead
  double mem_bandwidth_Bps = 8.0e9;  // main-memory fetch bandwidth
  double compute_time_s = 0;         // loop-body compute, paid either way

  [[nodiscard]] double time_unfused(std::int64_t shared_bytes) const;
  [[nodiscard]] double time_fused(std::int64_t shared_bytes) const;
};

}  // namespace ara::gpusim
