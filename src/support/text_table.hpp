// Column-aligned text table renderer. Dragon's Qt GUI displays array region
// information "in a tabular structure" (Fig 6, Fig 9, Fig 12, Fig 14); our
// console Dragon renders the same rows through this class. Rows can be
// highlighted, mirroring the GUI's green find-highlighting.
#pragma once

#include <string>
#include <vector>

namespace ara {

class TextTable {
 public:
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Adds a row; `highlight` marks it (the GUI highlights find matches green).
  void add_row(std::vector<std::string> row, bool highlight = false);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with box-drawing separators. When `ansi` is set, highlighted
  /// rows are wrapped in a green escape sequence; otherwise they are marked
  /// with a leading '*'.
  [[nodiscard]] std::string render(bool ansi = false) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool highlight = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ara
