#include "support/source_manager.hpp"

#include <cassert>
#include <stdexcept>

namespace ara {

std::string_view to_string(Language lang) {
  switch (lang) {
    case Language::Fortran:
      return "Fortran";
    case Language::C:
      return "C";
  }
  return "?";
}

FileId SourceManager::add(std::string name, std::string text, Language lang) {
  File f{std::move(name), std::move(text), lang, {}};
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < f.text.size(); ++i) {
    if (f.text[i] == '\n') f.line_starts.push_back(i + 1);
  }
  files_.push_back(std::move(f));
  return static_cast<FileId>(files_.size());  // ids start at 1
}

const SourceManager::File& SourceManager::get(FileId id) const {
  if (id == kInvalidFileId || id > files_.size()) {
    throw std::out_of_range("SourceManager: bad FileId");
  }
  return files_[id - 1];
}

const std::string& SourceManager::name(FileId id) const { return get(id).name; }
const std::string& SourceManager::text(FileId id) const { return get(id).text; }
Language SourceManager::language(FileId id) const { return get(id).lang; }

std::string SourceManager::object_name(FileId id) const {
  const std::string& n = get(id).name;
  const std::size_t slash = n.find_last_of('/');
  std::string base = slash == std::string::npos ? n : n.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base.resize(dot);
  return base + ".o";
}

std::optional<std::string_view> SourceManager::line(FileId id, std::uint32_t line_no) const {
  const File& f = get(id);
  if (line_no == 0 || line_no > line_count(id)) return std::nullopt;
  const std::size_t begin = f.line_starts[line_no - 1];
  std::size_t end = line_no < f.line_starts.size() ? f.line_starts[line_no] : f.text.size();
  // Trim the trailing newline (and a carriage return, if present).
  while (end > begin && (f.text[end - 1] == '\n' || f.text[end - 1] == '\r')) --end;
  return std::string_view(f.text).substr(begin, end - begin);
}

std::size_t SourceManager::line_count(FileId id) const {
  const File& f = get(id);
  // A trailing newline opens an empty final "line"; don't count it.
  if (!f.text.empty() && f.text.back() == '\n') return f.line_starts.size() - 1;
  return f.text.empty() ? 0 : f.line_starts.size();
}

std::vector<std::uint32_t> SourceManager::grep(FileId id, std::string_view needle) const {
  std::vector<std::uint32_t> hits;
  if (needle.empty()) return hits;
  const std::size_t n = line_count(id);
  for (std::uint32_t ln = 1; ln <= n; ++ln) {
    if (auto text = line(id, ln); text && text->find(needle) != std::string_view::npos) {
      hits.push_back(ln);
    }
  }
  return hits;
}

std::optional<FileId> SourceManager::find(std::string_view name) const {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].name == name) return static_cast<FileId>(i + 1);
  }
  return std::nullopt;
}

}  // namespace ara
