// Source positions shared by the front end, the IR (WN.linenum carries source
// position information, cf. Table I of the paper) and Dragon's source browser.
#pragma once

#include <cstdint>
#include <string>

namespace ara {

/// Identifies a file registered with a SourceManager. 0 is "no file".
using FileId = std::uint32_t;

inline constexpr FileId kInvalidFileId = 0;

/// A (file, line, column) source position. Lines and columns are 1-based;
/// 0 means "unknown".
struct SourceLoc {
  FileId file = kInvalidFileId;
  std::uint32_t line = 0;
  std::uint32_t col = 0;

  [[nodiscard]] bool valid() const { return file != kInvalidFileId && line != 0; }

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// A half-open [begin, end) range of source positions.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace ara
