// Bounded-backoff retry for transient I/O faults. The summary cache and the
// artifact export path wrap their filesystem operations in retry_io so a
// transient failure (NFS hiccup, antivirus lock, injected fi::IoFault)
// costs a few milliseconds instead of a degraded run. The policy is
// deliberately tiny: attempts are bounded, backoff doubles from a small
// base, and the final failure is reported to the caller — retrying forever
// would turn a dead disk into a hung service.
//
// This header stays free of obs dependencies (ara_obs links ara_support);
// callers that want a retry counter bump it in `on_retry`.
#pragma once

#include <chrono>
#include <thread>
#include <utility>

#include "support/faultinject.hpp"

namespace ara::support {

struct RetryPolicy {
  int attempts = 3;                              // total tries, including the first
  std::chrono::milliseconds initial_backoff{1};  // doubles after each failure
};

/// Runs `fn` until it returns true or the attempts are exhausted. An
/// fi::IoFault thrown by `fn` counts as a failed attempt (injected and real
/// transient faults retry identically); any other exception propagates.
/// `on_retry(attempt)` is invoked before each re-try (attempt >= 1).
/// Returns whether `fn` eventually succeeded; the last IoFault, if the
/// final attempt threw one, is swallowed into the `false` return.
template <typename Fn, typename OnRetry>
bool retry_io(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) {
  std::chrono::milliseconds backoff = policy.initial_backoff;
  for (int attempt = 0;; ++attempt) {
    bool ok = false;
    try {
      ok = fn();
    } catch (const fi::IoFault&) {
      ok = false;
    }
    if (ok) return true;
    if (attempt + 1 >= policy.attempts) return false;
    on_retry(attempt + 1);
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
}

template <typename Fn>
bool retry_io(const RetryPolicy& policy, Fn&& fn) {
  return retry_io(policy, std::forward<Fn>(fn), [](int) {});
}

}  // namespace ara::support
