// Bounded-backoff retry for transient I/O faults. The summary cache and the
// artifact export path wrap their filesystem operations in retry_io so a
// transient failure (NFS hiccup, antivirus lock, injected fi::IoFault)
// costs a few milliseconds instead of a degraded run. The policy is
// deliberately tiny: attempts are bounded, backoff doubles from a small
// base, and the final failure is reported to the caller — retrying forever
// would turn a dead disk into a hung service.
//
// This header stays free of obs dependencies (ara_obs links ara_support);
// callers that want a retry counter bump it in `on_retry`.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "support/faultinject.hpp"

namespace ara::support {

struct RetryPolicy {
  int attempts = 3;                              // total tries, including the first
  std::chrono::milliseconds initial_backoff{1};  // doubles after each failure
};

/// Exponential backoff with jitter for client-side retries (daemon clients
/// backing off a shedding server). Distinct from RetryPolicy: backoff is
/// capped, and jitter decorrelates competing clients so sheds don't retry
/// in lockstep (the thundering herd a fixed schedule would produce).
struct BackoffPolicy {
  int attempts = 5;                       // total tries, including the first
  std::chrono::milliseconds initial{10};  // base before the first retry
  std::chrono::milliseconds max{2'000};   // exponential growth cap
  double jitter = 0.5;                    // fraction of the base randomized away
};

/// SplitMix64 finalizer — a tiny, seedable, allocation-free mixer. Good
/// enough to decorrelate retry schedules; deliberately not <random> so the
/// jitter is a pure function of (seed, attempt) and tests can assert it.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The delay before retry `attempt` (>= 1): initial * 2^(attempt-1), capped
/// at `max`, minus a deterministic jitter drawn from [0, jitter*base) keyed
/// on (seed, attempt). Monotone non-decreasing in expectation, never above
/// `max`, never below (1-jitter)*base — the bounds the unit tests pin down.
[[nodiscard]] inline std::chrono::milliseconds backoff_ms(const BackoffPolicy& policy,
                                                          int attempt,
                                                          std::uint64_t seed) {
  if (attempt < 1) attempt = 1;
  std::int64_t base = policy.initial.count();
  for (int i = 1; i < attempt && base < policy.max.count(); ++i) base *= 2;
  base = std::min<std::int64_t>(base, policy.max.count());
  if (base <= 0) return std::chrono::milliseconds(0);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const auto span = static_cast<std::uint64_t>(static_cast<double>(base) * jitter);
  const std::uint64_t cut =
      span == 0 ? 0 : mix64(seed ^ (0x9e37ULL * static_cast<std::uint64_t>(attempt))) % span;
  return std::chrono::milliseconds(base - static_cast<std::int64_t>(cut));
}

/// Runs `fn` until it returns true or the attempts are exhausted. An
/// fi::IoFault thrown by `fn` counts as a failed attempt (injected and real
/// transient faults retry identically); any other exception propagates.
/// `on_retry(attempt)` is invoked before each re-try (attempt >= 1).
/// Returns whether `fn` eventually succeeded; the last IoFault, if the
/// final attempt threw one, is swallowed into the `false` return.
template <typename Fn, typename OnRetry>
bool retry_io(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) {
  std::chrono::milliseconds backoff = policy.initial_backoff;
  for (int attempt = 0;; ++attempt) {
    bool ok = false;
    try {
      ok = fn();
    } catch (const fi::IoFault&) {
      ok = false;
    }
    if (ok) return true;
    if (attempt + 1 >= policy.attempts) return false;
    on_retry(attempt + 1);
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
}

template <typename Fn>
bool retry_io(const RetryPolicy& policy, Fn&& fn) {
  return retry_io(policy, std::forward<Fn>(fn), [](int) {});
}

}  // namespace ara::support
