// Resource guards for untrusted translation units. A pathological input —
// thousands of nested parentheses, a DO loop with a 2^40 trip count, a
// machine-generated file declaring a million arrays — must degrade into a
// structured failure, never a stack overflow, an OOM kill, or a wedged
// worker. The compiler phases consult the thread-active ResourceLimits at
// their recursion points and allocation cliffs and throw ResourceLimitError
// (or its TimeoutError subclass for the wall-clock watchdog) when a cap is
// exceeded; the serve engine's per-unit barrier catches it and demotes the
// unit to a UnitFailure, and plain `arac` reports it through the exit-code
// sink as a total failure.
//
// Limits are installed per thread with LimitScope (RAII), so each serve
// worker guards exactly the unit it is running. Code that never sees a
// LimitScope runs under the generous defaults below.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ara::support {

struct ResourceLimits {
  /// Maximum parser recursion depth (expression nesting + statement
  /// nesting combined). Bounds native stack use during parse, sema, lower
  /// and analysis (their recursion follows the tree the parser built).
  std::uint32_t max_nesting_depth = 200;

  /// Maximum AST nodes per compile (expressions + statements).
  std::uint64_t max_ast_nodes = 5'000'000;

  /// Maximum constant trip count for a counted loop.
  std::int64_t max_loop_trip = 1'000'000'000;

  /// Maximum arrays declared per compile.
  std::uint64_t max_arrays = 10'000;

  /// Per-unit wall-clock budget; zero = no watchdog. Enforced
  /// cooperatively: check_deadline() is called from the token cursor and at
  /// phase boundaries.
  std::chrono::milliseconds unit_timeout{0};
};

/// Thrown when a cap is exceeded. what() is a user-facing reason suitable
/// for a UnitFailure record.
class ResourceLimitError : public std::runtime_error {
 public:
  explicit ResourceLimitError(const std::string& what) : std::runtime_error(what) {}
};

/// The wall-clock watchdog's flavor (so barriers can classify Timeout
/// separately from Resource).
class TimeoutError : public ResourceLimitError {
 public:
  explicit TimeoutError(const std::string& what) : ResourceLimitError(what) {}
};

/// The limits guarding the calling thread (the innermost LimitScope's, or
/// process defaults).
[[nodiscard]] const ResourceLimits& active_limits();

/// Installs `limits` for the calling thread and starts the wall-clock
/// watchdog (when limits.unit_timeout > 0). Restores the previous scope on
/// destruction. Also resets the thread's AST-node budget, so each scoped
/// unit is metered independently.
class LimitScope {
 public:
  explicit LimitScope(const ResourceLimits& limits);
  ~LimitScope();
  LimitScope(const LimitScope&) = delete;
  LimitScope& operator=(const LimitScope&) = delete;

 private:
  const ResourceLimits* prev_limits_;
  std::chrono::steady_clock::time_point prev_deadline_;
  std::uint64_t prev_ast_nodes_;
};

/// Throws TimeoutError when the active scope's deadline has passed. Cheap
/// enough for per-token call sites (one clock read when a watchdog is
/// armed, one branch otherwise).
void check_deadline();

/// Charges `n` AST nodes against the active scope's budget; throws
/// ResourceLimitError on exhaustion.
void charge_ast_nodes(std::uint64_t n = 1);

/// Zeroes the calling thread's AST-node meter. compile_program calls this
/// at entry so the cap is per compile, not per process lifetime.
void reset_ast_budget();

}  // namespace ara::support
