// Global variable-name interner. The region core (LinExpr/LinSystem and the
// Fourier–Motzkin solver) identifies variables by small dense integer ids so
// the hot arithmetic never touches std::string: term storage shrinks from a
// string-keyed map node per coefficient to an inline (VarId, coef) pair, and
// coefficient lookup becomes an integer scan instead of a string compare.
// Strings survive only at the boundaries — parse-in (wn_to_affine, summary
// deserialization) interns, print-out (LinExpr::str, summary serialization)
// resolves names back — so every emitted byte (.rgn/.dgn/.cfg/.summary) is
// unchanged.
//
// The table is process-global rather than per-translation-unit on purpose:
// ids never escape to disk, so unit scoping would buy no determinism, and a
// shared table lets the FM memo cache dedupe identical summaries across
// units. Interning is thread-safe (the serve engine summarizes units on a
// work-stealing pool); resolved string_views are stable for the process
// lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ara::support {

/// Small dense id of an interned variable name. Ids are assigned in first-
/// intern order and are therefore NOT portable across processes or runs —
/// anything observable (printing, serialization, elimination order) must
/// order by name, never by id.
using VarId = std::uint32_t;

/// Interns `name`: same string => same id for the process lifetime.
[[nodiscard]] VarId intern_var(std::string_view name);

/// Resolves an id returned by intern_var. The view points into the intern
/// table and is stable for the process lifetime.
[[nodiscard]] std::string_view var_name(VarId id);

/// Distinct names interned so far (diagnostics / tests).
[[nodiscard]] std::size_t interned_var_count();

}  // namespace ara::support
