// Small string helpers used across the project.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ara {

[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);

/// Case-insensitive equality (Fortran identifiers and keywords).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

[[nodiscard]] bool starts_with_icase(std::string_view s, std::string_view prefix);

/// Formats an address the way the paper's Mem_Loc column does: lowercase hex,
/// no 0x prefix (e.g. "b7fcefe0").
[[nodiscard]] std::string to_hex(std::uint64_t value);

/// Parses the Mem_Loc hex format back to an integer; returns false on junk.
[[nodiscard]] bool from_hex(std::string_view s, std::uint64_t& out);

}  // namespace ara
