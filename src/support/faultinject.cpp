#include "support/faultinject.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <thread>

namespace ara::fi {

#ifndef ARA_DISABLE_FAULTINJECT
namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail
#endif

namespace {

/// Flips the fast-path flag; a no-op when failpoints are compiled out (the
/// registry still parses specs so CLI plumbing behaves, but nothing reads it).
void set_armed([[maybe_unused]] bool on) {
#ifndef ARA_DISABLE_FAULTINJECT
  detail::g_armed.store(on, std::memory_order_relaxed);
#endif
}

struct Failpoint {
  Action action = Action::None;
  std::uint32_t param = 0;    // trunc bytes / delay ms
  std::uint32_t percent = 100;
  std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();  // remaining *N fires
  std::uint64_t hits = 0;
  std::map<std::string, std::uint64_t, std::less<>> draws;  // per-context draw index
};

struct Registry {
  std::mutex mu;
  std::uint64_t seed = 1;
  std::map<std::string, Failpoint, std::less<>> points;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// splitmix64 finalizer — the same mixer the difftest generator uses, so
/// firing decisions are bit-exact on every platform.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_str(std::uint64_t h, std::string_view s) {
  for (const char c : s) h = mix(h ^ static_cast<std::uint8_t>(c));
  return h;
}

bool parse_u32(std::string_view tok, std::uint32_t* out) {
  if (tok.empty() || tok.size() > 9) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_u64(std::string_view tok, std::uint64_t* out) {
  if (tok.empty() || tok.size() > 18) return false;
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// Parses one `point=action[:param][@P][*N]` entry into (name, fp).
bool parse_entry(std::string_view entry, std::string* name, Failpoint* fp, std::string* error) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    *error = "failpoint entry '" + std::string(entry) + "' is not name=action";
    return false;
  }
  *name = std::string(entry.substr(0, eq));
  std::string_view rest = entry.substr(eq + 1);

  // Suffixes first: *N then @P (either order).
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t star = rest.rfind('*');
    const std::size_t at = rest.rfind('@');
    if (star != std::string_view::npos && (at == std::string_view::npos || star > at)) {
      if (!parse_u64(rest.substr(star + 1), &fp->budget) || fp->budget == 0) {
        *error = "bad *count in '" + std::string(entry) + "'";
        return false;
      }
      rest = rest.substr(0, star);
    } else if (at != std::string_view::npos) {
      std::uint32_t pct = 0;
      if (!parse_u32(rest.substr(at + 1), &pct) || pct > 100) {
        *error = "bad @percent in '" + std::string(entry) + "'";
        return false;
      }
      fp->percent = pct;
      rest = rest.substr(0, at);
    }
  }

  std::string_view action = rest;
  std::string_view param;
  if (const std::size_t colon = rest.find(':'); colon != std::string_view::npos) {
    action = rest.substr(0, colon);
    param = rest.substr(colon + 1);
  }
  if (action == "io") {
    fp->action = Action::IoError;
  } else if (action == "alloc") {
    fp->action = Action::BadAlloc;
  } else if (action == "trunc") {
    fp->action = Action::Truncate;
    if (!parse_u32(param, &fp->param)) {
      *error = "trunc needs a byte count in '" + std::string(entry) + "'";
      return false;
    }
  } else if (action == "delay") {
    fp->action = Action::Delay;
    if (!parse_u32(param, &fp->param)) {
      *error = "delay needs milliseconds in '" + std::string(entry) + "'";
      return false;
    }
  } else {
    *error = "unknown failpoint action '" + std::string(action) + "'";
    return false;
  }
  if (fp->action != Action::Truncate && fp->action != Action::Delay && !param.empty()) {
    *error = "action '" + std::string(action) + "' takes no parameter";
    return false;
  }
  return true;
}

}  // namespace

bool configure(std::string_view spec, std::string* error) {
  std::uint64_t seed = 1;
  std::map<std::string, Failpoint, std::less<>> points;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t sep = spec.find_first_of(";,", pos);
    std::string_view entry =
        spec.substr(pos, sep == std::string_view::npos ? std::string_view::npos : sep - pos);
    pos = sep == std::string_view::npos ? spec.size() + 1 : sep + 1;
    if (entry.empty()) continue;

    if (entry.substr(0, 5) == "seed=") {
      if (!parse_u64(entry.substr(5), &seed)) {
        if (error != nullptr) *error = "bad seed in failpoint spec";
        return false;
      }
      continue;
    }
    std::string name;
    Failpoint fp;
    std::string err;
    if (!parse_entry(entry, &name, &fp, &err)) {
      if (error != nullptr) *error = err;
      return false;
    }
    points[name] = std::move(fp);
  }

  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.seed = seed;
  reg.points = std::move(points);
  set_armed(!reg.points.empty());
  return true;
}

bool configure_from_env(std::string* error) {
  const char* spec = std::getenv("ARA_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return true;
  return configure(spec, error);
}

void disarm() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
  set_armed(false);
}

#ifndef ARA_DISABLE_FAULTINJECT

Fired fire_slow(std::string_view point, std::string_view context) {
  Fired fired;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.points.find(point);
    if (it == reg.points.end()) return fired;
    Failpoint& fp = it->second;
    if (fp.budget == 0) return fired;
    if (fp.percent < 100) {
      // Deterministic per (seed, point, context, draw#): scheduling cannot
      // change which work items draw a fault.
      auto [draw_it, unused] = fp.draws.try_emplace(std::string(context), 0);
      const std::uint64_t n = draw_it->second++;
      std::uint64_t h = mix(reg.seed);
      h = hash_str(h, point);
      h = hash_str(h, context);
      h = mix(h ^ n);
      if (h % 100 >= fp.percent) return fired;
    }
    --fp.budget;
    ++fp.hits;
    fired.action = fp.action;
    fired.param = fp.param;
  }
  // Self-contained actions resolve here, outside the registry lock.
  if (fired.action == Action::Delay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fired.param));
    return Fired{};
  }
  if (fired.action == Action::BadAlloc) throw std::bad_alloc();
  return fired;
}

std::size_t check_io(std::string_view point, std::string_view context) {
  const Fired fired = fire(point, context);
  if (fired.action == Action::IoError) {
    throw IoFault("injected I/O fault at " + std::string(point) +
                  (context.empty() ? "" : " (" + std::string(context) + ")"));
  }
  if (fired.action == Action::Truncate) return fired.param;
  return std::numeric_limits<std::size_t>::max();
}

#endif  // ARA_DISABLE_FAULTINJECT

std::uint64_t hits(std::string_view point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, std::uint64_t>> snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(reg.points.size());
  for (const auto& [name, fp] : reg.points) out.emplace_back(name, fp.hits);
  return out;
}

}  // namespace ara::fi
