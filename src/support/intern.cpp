#include "support/intern.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace ara::support {
namespace {

// deque gives pointer stability for the stored names, so the string_views
// handed out by var_name() and the map keys below never dangle on growth.
struct InternTable {
  std::shared_mutex mu;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, VarId> ids;
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

VarId intern_var(std::string_view name) {
  InternTable& t = table();
  {
    std::shared_lock lock(t.mu);
    if (auto it = t.ids.find(name); it != t.ids.end()) return it->second;
  }
  std::unique_lock lock(t.mu);
  if (auto it = t.ids.find(name); it != t.ids.end()) return it->second;
  const VarId id = static_cast<VarId>(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(std::string_view(t.names.back()), id);
  return id;
}

std::string_view var_name(VarId id) {
  InternTable& t = table();
  std::shared_lock lock(t.mu);
  return std::string_view(t.names[id]);
}

std::size_t interned_var_count() {
  InternTable& t = table();
  std::shared_lock lock(t.mu);
  return t.names.size();
}

}  // namespace ara::support
