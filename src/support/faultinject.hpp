// Named failpoints for fault-injection testing (the serve engine's analogue
// of kernel failslabs / FreeBSD FAIL_POINT). Production code marks the spots
// where the outside world can fail — cache reads, artifact writes, per-unit
// analysis — with ARA_FAILPOINT("cache.read", ...); a test (or the
// ARA_FAILPOINTS env var / `arac --failpoints`) arms a subset of them with an
// action, and the marked site then behaves as if the real fault had happened:
// an I/O error, a std::bad_alloc, a truncated write, or a task delay.
//
// Cost model: disarmed (the default), a failpoint is a single relaxed atomic
// load and branch — the registry is never touched. Armed evaluation takes a
// mutex, which is fine: injection runs are tests, not production. Building
// with -DARA_DISABLE_FAULTINJECT compiles every failpoint out entirely
// (the macro expands to an empty Fired), for binaries that must not even
// carry the hook.
//
// Spec grammar (semicolon- or comma-separated entries):
//
//   seed=S                   deterministic stream seed (default 1)
//   <point>=<action>[@P][*N]
//
//   actions:  io             inject an I/O failure (fi::IoFault or a failed
//                            read/write, site-dependent)
//             alloc          throw std::bad_alloc at the site
//             trunc:K        truncate the site's write to K bytes
//             delay:MS       sleep MS milliseconds, then continue
//   @P        fire with probability P percent (default 100). The decision is
//             a pure hash of (seed, point, context, per-context draw index),
//             so which contexts fail is independent of thread scheduling.
//   *N        fire at most N times in total (global across contexts).
//
// Example: ARA_FAILPOINTS='seed=7;unit.analyze=io@10;cache.write=trunc:16*2'
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ara::fi {

enum class Action : std::uint8_t { None, IoError, BadAlloc, Truncate, Delay };

/// The outcome of evaluating one failpoint.
struct Fired {
  Action action = Action::None;
  std::uint32_t param = 0;  // trunc: byte cap; delay: milliseconds

  [[nodiscard]] explicit operator bool() const { return action != Action::None; }
};

/// The exception an `io` action raises at sites that fail by throwing (and
/// the type real transient I/O errors are normalized to, so retry loops and
/// unit barriers treat injected and genuine faults identically).
class IoFault : public std::runtime_error {
 public:
  explicit IoFault(const std::string& what) : std::runtime_error(what) {}
};

/// Parses and installs a spec (see the grammar above), replacing the current
/// configuration. Empty spec == disarm. Returns false (with `error` set) on
/// a malformed spec, leaving the previous configuration in place. Available
/// (but inert) in ARA_DISABLE_FAULTINJECT builds so CLI plumbing still links.
bool configure(std::string_view spec, std::string* error);

/// configure() from the ARA_FAILPOINTS environment variable (no-op when the
/// variable is unset or empty).
bool configure_from_env(std::string* error);

/// Removes every failpoint and resets hit counts.
void disarm();

#ifndef ARA_DISABLE_FAULTINJECT

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when any failpoint is configured; the only check on the fast path.
[[nodiscard]] inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Armed-path evaluation; use the ARA_FAILPOINT macro instead.
Fired fire_slow(std::string_view point, std::string_view context);

/// Evaluates a failpoint. `context` names the work item (e.g. the unit
/// being analyzed) so probabilistic firing is deterministic per item
/// regardless of scheduling; pass "" for global sites. Delay actions sleep
/// here and return None; BadAlloc actions throw std::bad_alloc here.
/// IoError/Truncate are returned for the site to act on.
[[nodiscard]] inline Fired fire(std::string_view point, std::string_view context = {}) {
  return armed() ? fire_slow(point, context) : Fired{};
}

/// Convenience for pure I/O sites: throws IoFault when an `io` action fires
/// (delay/alloc are handled inside fire()); Truncate is reported back.
/// Returns the number of bytes to keep on Truncate, or SIZE_MAX for "all".
std::size_t check_io(std::string_view point, std::string_view context = {});

#else  // ARA_DISABLE_FAULTINJECT: every evaluation site folds to a constant.

[[nodiscard]] constexpr bool armed() { return false; }
[[nodiscard]] inline Fired fire(std::string_view, std::string_view = {}) { return {}; }
inline std::size_t check_io(std::string_view, std::string_view = {}) { return SIZE_MAX; }

#endif

/// Times `point` has fired (any action), for tests and reports.
[[nodiscard]] std::uint64_t hits(std::string_view point);

/// All configured points with their hit counts, name-sorted.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot();

}  // namespace ara::fi

#ifdef ARA_DISABLE_FAULTINJECT
#define ARA_FAILPOINT(...) (::ara::fi::Fired{})
#else
/// ARA_FAILPOINT("cache.read") or ARA_FAILPOINT("unit.analyze", unit_name).
#define ARA_FAILPOINT(...) (::ara::fi::fire(__VA_ARGS__))
#endif
