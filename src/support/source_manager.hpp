// Owns the text of every compilation unit and maps SourceLocs back to lines.
// Dragon's source-browsing / grep features (paper §V-A, Fig 7) are built on
// the line access provided here.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace ara {

/// Language of a source buffer. The paper's tool accepts Fortran 77/90, C and
/// C++ (§I); we support a Fortran-like and a C-like subset.
enum class Language { Fortran, C };

[[nodiscard]] std::string_view to_string(Language lang);

/// Registry of source buffers. Buffers are immutable once added; FileIds are
/// stable for the lifetime of the manager.
class SourceManager {
 public:
  /// Registers a buffer and returns its id (ids start at 1).
  FileId add(std::string name, std::string text, Language lang);

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

  [[nodiscard]] const std::string& name(FileId id) const;
  [[nodiscard]] const std::string& text(FileId id) const;
  [[nodiscard]] Language language(FileId id) const;

  /// The paper's `.rgn` rows carry an object-file column ("matrix.o",
  /// "verify.o"); this derives that name from the source name.
  [[nodiscard]] std::string object_name(FileId id) const;

  /// 1-based line access; returns nullopt when out of range.
  [[nodiscard]] std::optional<std::string_view> line(FileId id, std::uint32_t line_no) const;
  [[nodiscard]] std::size_t line_count(FileId id) const;

  /// All 1-based line numbers whose text contains `needle` (Dragon's
  /// UNIX-like grep feature, Fig 7).
  [[nodiscard]] std::vector<std::uint32_t> grep(FileId id, std::string_view needle) const;

  /// Looks up a registered file by name; nullopt if absent.
  [[nodiscard]] std::optional<FileId> find(std::string_view name) const;

 private:
  struct File {
    std::string name;
    std::string text;
    Language lang;
    std::vector<std::size_t> line_starts;  // byte offset of each line start
  };

  [[nodiscard]] const File& get(FileId id) const;

  std::vector<File> files_;
};

}  // namespace ara
