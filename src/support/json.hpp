// Minimal JSON support: a string escaper for the writers (Chrome traces,
// .stats.json) and a small recursive-descent parser used by the tests to
// validate that emitted telemetry is well-formed. Not a general-purpose
// library: numbers parse to double, no \u surrogate pairing, input must be
// a single value with only trailing whitespace.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ara::json {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not added).
[[nodiscard]] std::string escape(std::string_view s);

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order kept

  [[nodiscard]] bool is_null() const { return kind == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup (first match); nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
};

/// Parses one JSON value. Returns nullopt (and sets `error` with an offset-
/// tagged message) on malformed input.
[[nodiscard]] std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

}  // namespace ara::json
