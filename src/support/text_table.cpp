#include "support/text_table.hpp"

#include <algorithm>
#include <sstream>

namespace ara {

void TextTable::add_row(std::vector<std::string> row, bool highlight) {
  rows_.push_back(Row{std::move(row), highlight});
}

std::string TextTable::render(bool ansi) const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) width[i] = std::max(width[i], cells[i].size());
  };
  account(header_);
  for (const Row& r : rows_) account(r.cells);

  auto emit_cells = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < ncols) os << " | ";
    }
  };

  std::ostringstream os;
  if (!header_.empty()) {
    std::ostringstream line;
    emit_cells(line, header_);
    os << "  " << line.str() << '\n';
    std::size_t total = 2;  // leading marker column
    for (std::size_t i = 0; i < ncols; ++i) total += width[i] + (i + 1 < ncols ? 3 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const Row& r : rows_) {
    std::ostringstream line;
    emit_cells(line, r.cells);
    if (r.highlight && ansi) {
      os << "  \x1b[32m" << line.str() << "\x1b[0m\n";
    } else {
      os << (r.highlight ? "* " : "  ") << line.str() << '\n';
    }
  }
  return os.str();
}

}  // namespace ara
