#include "support/diagnostics.hpp"

#include <sstream>

#include "support/source_manager.hpp"

namespace ara {

std::string_view to_string(Severity sev) {
  switch (sev) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    if (d.loc.valid() && sm_ != nullptr) {
      os << sm_->name(d.loc.file) << ':' << d.loc.line << ':' << d.loc.col << ": ";
    }
    os << to_string(d.severity) << ": " << d.message << '\n';
  }
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace ara
