#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ara::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after value");
        v = std::nullopt;
      }
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(std::string why) {
    if (error_.empty()) error_ = "offset " + std::to_string(pos_) + ": " + std::move(why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    fail("expected '" + std::string(word) + "'");
    return false;
  }

  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
        if (!eat_literal("true")) return std::nullopt;
        return make_bool(true);
      case 'f':
        if (!eat_literal("false")) return std::nullopt;
        return make_bool(false);
      case 'n':
        if (!eat_literal("null")) return std::nullopt;
        return Value{};
      default:
        return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (eat('}')) return v;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Value> member = parse_value();
      if (!member) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return v;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (eat(']')) return v;
    while (true) {
      std::optional<Value> item = parse_value();
      if (!item) return std::nullopt;
      v.array.push_back(std::move(*item));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return v;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<Value> parse_string_value() {
    std::optional<std::string> s = parse_string();
    if (!s) return std::nullopt;
    Value v;
    v.kind = Value::Kind::String;
    v.string = std::move(*s);
    return v;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          const auto [ptr, ec] =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc{} || ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          pos_ += 4;
          // Basic-plane only (no surrogate pairing): encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    bool dot = false;
    bool exp = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        any = true;
        ++pos_;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && any && !exp) {
        exp = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      } else {
        break;
      }
    }
    if (!any) {
      fail("expected a value");
      return std::nullopt;
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ara::json
