#include "support/limits.hpp"

namespace ara::support {

namespace {

const ResourceLimits kDefaults;

thread_local const ResourceLimits* t_limits = nullptr;
thread_local std::chrono::steady_clock::time_point t_deadline{};  // epoch = none
thread_local std::uint64_t t_ast_nodes = 0;

}  // namespace

const ResourceLimits& active_limits() {
  return t_limits != nullptr ? *t_limits : kDefaults;
}

LimitScope::LimitScope(const ResourceLimits& limits)
    : prev_limits_(t_limits), prev_deadline_(t_deadline), prev_ast_nodes_(t_ast_nodes) {
  t_limits = &limits;
  t_deadline = limits.unit_timeout.count() > 0
                   ? std::chrono::steady_clock::now() + limits.unit_timeout
                   : std::chrono::steady_clock::time_point{};
  t_ast_nodes = 0;
}

LimitScope::~LimitScope() {
  t_limits = prev_limits_;
  t_deadline = prev_deadline_;
  t_ast_nodes = prev_ast_nodes_;
}

void check_deadline() {
  if (t_deadline == std::chrono::steady_clock::time_point{}) return;
  if (std::chrono::steady_clock::now() > t_deadline) {
    throw TimeoutError("unit exceeded its wall-clock budget of " +
                       std::to_string(active_limits().unit_timeout.count()) + " ms");
  }
}

void reset_ast_budget() { t_ast_nodes = 0; }

void charge_ast_nodes(std::uint64_t n) {
  t_ast_nodes += n;
  if (t_ast_nodes > active_limits().max_ast_nodes) {
    throw ResourceLimitError("unit exceeds the AST node cap of " +
                             std::to_string(active_limits().max_ast_nodes) + " nodes");
  }
}

}  // namespace ara::support
