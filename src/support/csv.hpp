// Minimal CSV reader/writer. The paper's compiler extension emits the array
// analysis results as "a comma separated plain file .rgn, where each row
// maintains information about each region per access mode" (§IV-C); Dragon
// parses it back. Fields containing separators or quotes are quoted per
// RFC 4180.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ara {

class CsvWriter {
 public:
  /// Appends one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  std::string out_;
};

/// Parses CSV text into rows of fields. Handles quoted fields, embedded
/// separators, escaped quotes ("") and both \n and \r\n line endings.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace ara
