#include "support/csv.hpp"

namespace ara {

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void append_field(std::string& out, std::string_view field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  // A row consisting of one empty field would serialize to a blank line,
  // which parses as "no row"; quote it to keep the round trip exact.
  if (fields.size() == 1 && fields[0].empty()) {
    out_ += "\"\"\n";
    return;
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ += ',';
    append_field(out_, fields[i]);
  }
  out_ += '\n';
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    if (field_started || !field.empty() || !row.empty()) {
      end_field();
      rows.push_back(std::move(row));
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // handled by the following '\n'
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  end_row();
  return rows;
}

}  // namespace ara
