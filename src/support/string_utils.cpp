#include "support/string_utils.hpp"

#include <algorithm>
#include <cctype>

namespace ara {

namespace {
char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
char upper(char c) { return static_cast<char>(std::toupper(static_cast<unsigned char>(c))); }
}  // namespace

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), upper);
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) { return lower(x) == lower(y); });
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(begin));
      return parts;
    }
    parts.emplace_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::string to_hex(std::uint64_t value) {
  if (value == 0) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  while (value != 0) {
    out.push_back(kDigits[value & 0xF]);
    value >>= 4;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

bool from_hex(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace ara
