// Diagnostic engine shared by all compiler phases.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.hpp"

namespace ara {

class SourceManager;

enum class Severity { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity sev);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; phases report through this and callers inspect or
/// render afterwards. Throwing is reserved for internal invariant violations.
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(const SourceManager* sm = nullptr) : sm_(sm) {}

  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) { report(Severity::Error, loc, std::move(message)); }
  void warning(SourceLoc loc, std::string message) { report(Severity::Warning, loc, std::move(message)); }
  void note(SourceLoc loc, std::string message) { report(Severity::Note, loc, std::move(message)); }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// Renders "file:line:col: severity: message" lines.
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  const SourceManager* sm_;
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace ara
