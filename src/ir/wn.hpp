// The WHIRL node (WN). Each vertex of the tree IR is one WN, carrying the
// fields the paper's tool consumes (Table I): prev/next sibling pointers,
// linenum, offset, element size, operator, result type, kid count, and — via
// ST_IDX into the symbol table — the array name, dimensions and attributes.
//
// The ARRAY operator follows the Open64 layout the paper documents (§IV-C):
//   kid 0        : base address (LDA of the array symbol, or LDID of a formal)
//   kids 1..n    : size of each dimension (row-major order; multipliers for
//                  non-contiguous arrays)
//   kids n+1..2n : zero-based index expressions for dimensions 0..n-1
// so kid_count == 2n+1 and num_dim == kid_count >> 1. element_size is the
// element size in bytes, negative for non-contiguous Fortran-90 arrays.
// ARRAY returns the address  base + z * sum_i( y_i * prod_{j>i} h_j ).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ir/mtype.hpp"
#include "ir/opcode.hpp"
#include "ir/symtab.hpp"
#include "support/source_location.hpp"

namespace ara::ir {

class WN;
using WNPtr = std::unique_ptr<WN>;

class WN {
 public:
  WN(Opr opr, Mtype rtype, Mtype desc = Mtype::Void) : opr_(opr), rtype_(rtype), desc_(desc) {}

  WN(const WN&) = delete;
  WN& operator=(const WN&) = delete;

  [[nodiscard]] Opr opr() const { return opr_; }
  [[nodiscard]] Mtype rtype() const { return rtype_; }
  [[nodiscard]] Mtype desc() const { return desc_; }

  // --- Table I fields ---------------------------------------------------
  [[nodiscard]] SourceLoc linenum() const { return linenum_; }
  void set_linenum(SourceLoc loc) { linenum_ = loc; }

  [[nodiscard]] std::int64_t offset() const { return offset_; }
  void set_offset(std::int64_t v) { offset_ = v; }

  /// Element size for ARRAY (negative means non-contiguous, §IV-C).
  [[nodiscard]] std::int64_t element_size() const { return element_size_; }
  void set_element_size(std::int64_t v) { element_size_ = v; }

  [[nodiscard]] std::int64_t const_val() const { return const_val_; }
  void set_const_val(std::int64_t v) { const_val_ = v; }

  [[nodiscard]] double flt_val() const { return flt_val_; }
  void set_flt_val(double v) { flt_val_ = v; }

  [[nodiscard]] StIdx st_idx() const { return st_idx_; }
  void set_st_idx(StIdx idx) { st_idx_ = idx; }

  /// Pragma payload / intrinsic name.
  [[nodiscard]] const std::string& str_val() const { return str_val_; }
  void set_str_val(std::string s) { str_val_ = std::move(s); }

  [[nodiscard]] std::size_t kid_count() const { return kids_.size(); }
  [[nodiscard]] WN* kid(std::size_t i) { return kids_.at(i).get(); }
  [[nodiscard]] const WN* kid(std::size_t i) const { return kids_.at(i).get(); }

  /// Appends a kid, taking ownership; returns the raw pointer for chaining.
  WN* attach(WNPtr child);

  [[nodiscard]] WN* parent() { return parent_; }
  [[nodiscard]] const WN* parent() const { return parent_; }

  /// Previous/next sibling in the parent's kid list (the prev/next pointers
  /// of Table I; Open64 links BLOCK statements the same way).
  [[nodiscard]] const WN* prev() const;
  [[nodiscard]] const WN* next() const;

  // --- ARRAY accessors (num_dim, array_dim, array_index, array_base) ----
  /// Number of dimensions, inferred from kid-count shifted right by 1.
  [[nodiscard]] std::size_t num_dim() const { return kid_count() >> 1; }
  [[nodiscard]] const WN* array_base() const { return kid(0); }
  [[nodiscard]] const WN* array_dim(std::size_t i) const { return kid(1 + i); }
  [[nodiscard]] const WN* array_index(std::size_t i) const { return kid(1 + num_dim() + i); }
  [[nodiscard]] WN* array_index(std::size_t i) { return kids_.at(1 + num_dim() + i).get(); }

  // --- DO_LOOP accessors -------------------------------------------------
  [[nodiscard]] const WN* loop_idname() const { return kid(0); }
  [[nodiscard]] const WN* loop_init() const { return kid(1); }
  [[nodiscard]] const WN* loop_end() const { return kid(2); }
  [[nodiscard]] const WN* loop_step() const { return kid(3); }
  [[nodiscard]] const WN* loop_body() const { return kid(4); }

  /// Depth-first pre-order visit; the visitor returns false to prune the
  /// subtree below the current node.
  template <typename F>
  void walk(F&& visit) const {
    if (!visit(*this)) return;
    for (const WNPtr& k : kids_) {
      if (k) k->walk(visit);
    }
  }

  /// Counts all nodes in this subtree (including this one).
  [[nodiscard]] std::size_t tree_size() const;

 private:
  Opr opr_;
  Mtype rtype_;
  Mtype desc_;
  SourceLoc linenum_;
  std::int64_t offset_ = 0;
  std::int64_t element_size_ = 0;
  std::int64_t const_val_ = 0;
  double flt_val_ = 0.0;
  StIdx st_idx_ = kInvalidSt;
  std::string str_val_;
  WN* parent_ = nullptr;
  std::vector<WNPtr> kids_;
};

}  // namespace ara::ir
