// Structural verifier for WHIRL trees. Catches malformed IR early — every
// front-end lowering and every hand-built test tree runs through this.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ara::ir {

/// Returns a list of human-readable violations; empty means the tree is
/// well-formed.
[[nodiscard]] std::vector<std::string> verify_tree(const WN& root, const SymbolTable& symtab);

/// Verifies every procedure in the program.
[[nodiscard]] std::vector<std::string> verify_program(const Program& program);

}  // namespace ara::ir
