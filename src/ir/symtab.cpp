#include "ir/symtab.hpp"

#include <stdexcept>

#include "support/string_utils.hpp"

namespace ara::ir {

std::optional<std::int64_t> Ty::total_elements() const {
  if (!is_array()) return 1;
  std::int64_t total = 1;
  for (const ArrayDim& d : dims) {
    const auto e = d.extent();
    if (!e || *e < 0) return std::nullopt;
    total *= *e;
  }
  return total;
}

std::optional<std::int64_t> Ty::size_bytes() const {
  const auto n = total_elements();
  if (!n) return std::nullopt;
  return *n * element_size();
}

SymbolTable::SymbolTable() {
  tys_.emplace_back();  // slot 0 invalid
  sts_.emplace_back();
}

TyIdx SymbolTable::make_scalar_ty(Mtype m) {
  // Scalar types are interned.
  for (std::size_t i = 1; i < tys_.size(); ++i) {
    if (tys_[i].kind == TyKind::Scalar && tys_[i].mtype == m) return static_cast<TyIdx>(i);
  }
  Ty t;
  t.kind = TyKind::Scalar;
  t.mtype = m;
  tys_.push_back(std::move(t));
  return static_cast<TyIdx>(tys_.size() - 1);
}

TyIdx SymbolTable::make_array_ty(Mtype elem, std::vector<ArrayDim> dims, bool row_major,
                                 bool noncontiguous, bool coarray) {
  Ty t;
  t.kind = TyKind::Array;
  t.mtype = elem;
  t.dims = std::move(dims);
  t.row_major = row_major;
  t.noncontiguous = noncontiguous;
  t.coarray = coarray;
  tys_.push_back(std::move(t));
  return static_cast<TyIdx>(tys_.size() - 1);
}

StIdx SymbolTable::make_st(St st) {
  sts_.push_back(std::move(st));
  return static_cast<StIdx>(sts_.size() - 1);
}

const Ty& SymbolTable::ty(TyIdx idx) const {
  if (idx == kInvalidTy || idx >= tys_.size()) throw std::out_of_range("bad TyIdx");
  return tys_[idx];
}

const St& SymbolTable::st(StIdx idx) const {
  if (idx == kInvalidSt || idx >= sts_.size()) throw std::out_of_range("bad StIdx");
  return sts_[idx];
}

St& SymbolTable::st_mutable(StIdx idx) {
  if (idx == kInvalidSt || idx >= sts_.size()) throw std::out_of_range("bad StIdx");
  return sts_[idx];
}

std::vector<StIdx> SymbolTable::all_sts() const {
  std::vector<StIdx> out;
  out.reserve(sts_.size() - 1);
  for (std::size_t i = 1; i < sts_.size(); ++i) out.push_back(static_cast<StIdx>(i));
  return out;
}

std::optional<StIdx> SymbolTable::find_proc(std::string_view name) const {
  for (std::size_t i = 1; i < sts_.size(); ++i) {
    if (sts_[i].sclass == StClass::Proc && iequals(sts_[i].name, name)) {
      return static_cast<StIdx>(i);
    }
  }
  return std::nullopt;
}

}  // namespace ara::ir
