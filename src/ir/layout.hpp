// Static data layout: assigns a memory address to every variable so the tool
// can report the Mem_Loc column ("the memory address of this array in
// hexadecimal; it helps the user to find arrays pointing to the same memory
// location", §V-A). Globals are laid out in one arena, each procedure's
// locals in another, mimicking the static-data / stack split of the paper's
// examples (aarr at 55599870; LU arrays at b79edfa0 / b7fcefe0).
#pragma once

#include <cstdint>

#include "ir/program.hpp"

namespace ara::ir {

struct LayoutOptions {
  std::uint64_t global_base = 0xb7000000;
  std::uint64_t local_base = 0x55500000;
  std::uint64_t min_align = 8;
};

/// Assigns St::addr for every Var/Formal symbol. Formals receive no storage
/// (addr 0); IPA later resolves a formal's Mem_Loc to its bound actual.
/// Variable-length arrays get an address but contribute a zero extent.
void assign_layout(Program& program, const LayoutOptions& opts = {});

}  // namespace ara::ir
