#include "ir/wn.hpp"

namespace ara::ir {

WN* WN::attach(WNPtr child) {
  child->parent_ = this;
  kids_.push_back(std::move(child));
  return kids_.back().get();
}

const WN* WN::prev() const {
  if (parent_ == nullptr) return nullptr;
  const WN* last = nullptr;
  for (std::size_t i = 0; i < parent_->kid_count(); ++i) {
    const WN* k = parent_->kid(i);
    if (k == this) return last;
    last = k;
  }
  return nullptr;
}

const WN* WN::next() const {
  if (parent_ == nullptr) return nullptr;
  for (std::size_t i = 0; i + 1 < parent_->kid_count(); ++i) {
    if (parent_->kid(i) == this) return parent_->kid(i + 1);
  }
  return nullptr;
}

std::size_t WN::tree_size() const {
  std::size_t n = 0;
  walk([&n](const WN&) {
    ++n;
    return true;
  });
  return n;
}

}  // namespace ara::ir
