// A whole-program WHIRL container: every procedure's tree plus the shared
// symbol tables and source buffers. This is what the front end produces and
// what IPA consumes (cf. Fig 4: the IPA extension walks the call graph whose
// nodes carry the procedure's WHIRL tree and symbol table indices).
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "ir/symtab.hpp"
#include "ir/wn.hpp"
#include "support/source_manager.hpp"

namespace ara::ir {

/// One compiled procedure: its entry symbol and its WHIRL tree.
struct ProcedureIR {
  StIdx proc_st = kInvalidSt;
  FileId file = kInvalidFileId;
  WNPtr tree;  // FUNC_ENTRY node
};

struct Program {
  SourceManager sources;
  SymbolTable symtab;
  std::vector<ProcedureIR> procedures;

  [[nodiscard]] const ProcedureIR* find_procedure(std::string_view name) const;
  [[nodiscard]] const ProcedureIR* find_procedure(StIdx proc_st) const;

  /// Name of the procedure owning this ST, or "" for globals.
  [[nodiscard]] std::string owner_name(StIdx st) const;
};

}  // namespace ara::ir
