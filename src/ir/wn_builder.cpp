#include "ir/wn_builder.hpp"

#include <cassert>
#include <stdexcept>

namespace ara::ir {

Mtype WNBuilder::st_mtype(StIdx st) const { return symtab_.ty(symtab_.st(st).ty).mtype; }

WNPtr WNBuilder::intconst(std::int64_t v, Mtype t) const {
  auto wn = std::make_unique<WN>(Opr::Intconst, t);
  wn->set_const_val(v);
  return wn;
}

WNPtr WNBuilder::fconst(double v, Mtype t) const {
  auto wn = std::make_unique<WN>(Opr::Fconst, t);
  wn->set_flt_val(v);
  return wn;
}

WNPtr WNBuilder::ldid(StIdx st) const {
  auto wn = std::make_unique<WN>(Opr::Ldid, st_mtype(st), st_mtype(st));
  wn->set_st_idx(st);
  return wn;
}

WNPtr WNBuilder::lda(StIdx st) const {
  auto wn = std::make_unique<WN>(Opr::Lda, Mtype::U8);
  wn->set_st_idx(st);
  return wn;
}

WNPtr WNBuilder::idname(StIdx st) const {
  auto wn = std::make_unique<WN>(Opr::Idname, st_mtype(st));
  wn->set_st_idx(st);
  return wn;
}

WNPtr WNBuilder::binop(Opr op, WNPtr lhs, WNPtr rhs, Mtype t) const {
  if (!opr_is_binary(op)) throw std::invalid_argument("binop: not a binary operator");
  auto wn = std::make_unique<WN>(op, t);
  wn->attach(std::move(lhs));
  wn->attach(std::move(rhs));
  return wn;
}

WNPtr WNBuilder::neg(WNPtr v, Mtype t) const {
  auto wn = std::make_unique<WN>(Opr::Neg, t);
  wn->attach(std::move(v));
  return wn;
}

WNPtr WNBuilder::cvt(WNPtr v, Mtype to) const {
  auto wn = std::make_unique<WN>(Opr::Cvt, to, v->rtype());
  wn->attach(std::move(v));
  return wn;
}

WNPtr WNBuilder::array(WNPtr base, std::vector<WNPtr> dims, std::vector<WNPtr> indices,
                       std::int64_t element_size) const {
  if (dims.size() != indices.size()) throw std::invalid_argument("array: rank mismatch");
  auto wn = std::make_unique<WN>(Opr::Array, Mtype::U8);
  wn->set_element_size(element_size);
  wn->attach(std::move(base));
  for (WNPtr& d : dims) wn->attach(std::move(d));
  for (WNPtr& i : indices) wn->attach(std::move(i));
  return wn;
}

WNPtr WNBuilder::coindex(WNPtr array, WNPtr image) const {
  auto wn = std::make_unique<WN>(Opr::Coindex, Mtype::U8);
  wn->attach(std::move(array));
  wn->attach(std::move(image));
  return wn;
}

WNPtr WNBuilder::iload(WNPtr address, Mtype t) const {
  auto wn = std::make_unique<WN>(Opr::Iload, t, t);
  wn->attach(std::move(address));
  return wn;
}

WNPtr WNBuilder::istore(WNPtr value, WNPtr address, Mtype t) const {
  auto wn = std::make_unique<WN>(Opr::Istore, Mtype::Void, t);
  wn->attach(std::move(value));
  wn->attach(std::move(address));
  return wn;
}

WNPtr WNBuilder::stid(StIdx st, WNPtr value) const {
  auto wn = std::make_unique<WN>(Opr::Stid, Mtype::Void, st_mtype(st));
  wn->set_st_idx(st);
  wn->attach(std::move(value));
  return wn;
}

WNPtr WNBuilder::block() const { return std::make_unique<WN>(Opr::Block, Mtype::Void); }

WNPtr WNBuilder::do_loop(StIdx index_var, WNPtr init, WNPtr end, WNPtr step, WNPtr body) const {
  auto wn = std::make_unique<WN>(Opr::DoLoop, Mtype::Void);
  wn->attach(idname(index_var));
  wn->attach(std::move(init));
  wn->attach(std::move(end));
  wn->attach(std::move(step));
  wn->attach(std::move(body));
  return wn;
}

WNPtr WNBuilder::if_stmt(WNPtr cond, WNPtr then_block, WNPtr else_block) const {
  auto wn = std::make_unique<WN>(Opr::If, Mtype::Void);
  wn->attach(std::move(cond));
  wn->attach(std::move(then_block));
  wn->attach(else_block ? std::move(else_block) : block());
  return wn;
}

WNPtr WNBuilder::parm(WNPtr value) const {
  auto wn = std::make_unique<WN>(Opr::Parm, value->rtype());
  wn->attach(std::move(value));
  return wn;
}

WNPtr WNBuilder::call(StIdx callee, std::vector<WNPtr> args) const {
  auto wn = std::make_unique<WN>(Opr::Call, Mtype::Void);
  wn->set_st_idx(callee);
  for (WNPtr& a : args) wn->attach(parm(std::move(a)));
  return wn;
}

WNPtr WNBuilder::intrinsic(std::string name, std::vector<WNPtr> args, Mtype t) const {
  auto wn = std::make_unique<WN>(Opr::Intrinsic, t);
  wn->set_str_val(std::move(name));
  for (WNPtr& a : args) wn->attach(parm(std::move(a)));
  return wn;
}

WNPtr WNBuilder::ret() const { return std::make_unique<WN>(Opr::Return, Mtype::Void); }

WNPtr WNBuilder::pragma(std::string text) const {
  auto wn = std::make_unique<WN>(Opr::Pragma, Mtype::Void);
  wn->set_str_val(std::move(text));
  return wn;
}

WNPtr WNBuilder::func_entry(StIdx proc, std::vector<StIdx> formals, WNPtr body) const {
  auto wn = std::make_unique<WN>(Opr::FuncEntry, Mtype::Void);
  wn->set_st_idx(proc);
  for (StIdx f : formals) wn->attach(idname(f));
  wn->attach(std::move(body));
  return wn;
}

}  // namespace ara::ir
