#include "ir/mtype.hpp"

namespace ara::ir {

std::string_view mtype_name(Mtype t) {
  switch (t) {
    case Mtype::Void:
      return "V";
    case Mtype::I1:
      return "I1";
    case Mtype::I2:
      return "I2";
    case Mtype::I4:
      return "I4";
    case Mtype::I8:
      return "I8";
    case Mtype::U4:
      return "U4";
    case Mtype::U8:
      return "U8";
    case Mtype::F4:
      return "F4";
    case Mtype::F8:
      return "F8";
  }
  return "?";
}

std::string_view mtype_source_name(Mtype t) {
  switch (t) {
    case Mtype::Void:
      return "void";
    case Mtype::I1:
      return "char";
    case Mtype::I2:
      return "short";
    case Mtype::I4:
      return "int";
    case Mtype::I8:
      return "long";
    case Mtype::U4:
      return "unsigned";
    case Mtype::U8:
      return "unsigned long";
    case Mtype::F4:
      return "float";
    case Mtype::F8:
      return "double";
  }
  return "?";
}

}  // namespace ara::ir
