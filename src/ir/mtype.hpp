// Machine types. WHIRL expresses operand/result types as "mtypes"; the
// subset here covers the types appearing in the paper's tables (char, int,
// double, float, ...). Element sizes feed the Size_bytes / Element_Size
// columns of the array analysis graph.
#pragma once

#include <cstdint>
#include <string_view>

namespace ara::ir {

enum class Mtype : std::uint8_t {
  Void,
  I1,  // 8-bit integer (char)
  I2,  // 16-bit integer
  I4,  // 32-bit integer (int)
  I8,  // 64-bit integer
  U4,
  U8,
  F4,  // float
  F8,  // double
};

/// Size in bytes of a value of this mtype. Void has size 0.
[[nodiscard]] constexpr std::size_t mtype_size(Mtype t) {
  switch (t) {
    case Mtype::Void:
      return 0;
    case Mtype::I1:
      return 1;
    case Mtype::I2:
      return 2;
    case Mtype::I4:
    case Mtype::U4:
    case Mtype::F4:
      return 4;
    case Mtype::I8:
    case Mtype::U8:
    case Mtype::F8:
      return 8;
  }
  return 0;
}

/// WHIRL-style mtype mnemonic (I4, F8, ...).
[[nodiscard]] std::string_view mtype_name(Mtype t);

/// The Data_Type column of the paper's table uses source-language names
/// ("int", "double", "char", ...).
[[nodiscard]] std::string_view mtype_source_name(Mtype t);

[[nodiscard]] constexpr bool mtype_is_float(Mtype t) { return t == Mtype::F4 || t == Mtype::F8; }
[[nodiscard]] constexpr bool mtype_is_integral(Mtype t) {
  return t == Mtype::I1 || t == Mtype::I2 || t == Mtype::I4 || t == Mtype::I8 || t == Mtype::U4 ||
         t == Mtype::U8;
}

}  // namespace ara::ir
