#include "ir/verifier.hpp"

#include <sstream>

namespace ara::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const SymbolTable& symtab) : symtab_(symtab) {}

  std::vector<std::string> run(const WN& root) {
    if (root.opr() != Opr::FuncEntry) fail(root, "root must be FUNC_ENTRY");
    visit(root);
    return std::move(errors_);
  }

 private:
  void fail(const WN& wn, std::string_view what) {
    std::ostringstream os;
    os << opr_name(wn.opr()) << ": " << what;
    errors_.push_back(os.str());
  }

  void check_st(const WN& wn) {
    if (wn.st_idx() == kInvalidSt || wn.st_idx() > symtab_.st_count()) {
      fail(wn, "invalid ST_IDX");
    }
  }

  void expect_kids(const WN& wn, std::size_t n) {
    if (wn.kid_count() != n) {
      std::ostringstream os;
      os << "expected " << n << " kids, has " << wn.kid_count();
      fail(wn, os.str());
    }
  }

  void expect_expr_kids(const WN& wn) {
    for (std::size_t i = 0; i < wn.kid_count(); ++i) {
      if (!opr_is_expr(wn.kid(i)->opr())) fail(wn, "kid is not an expression");
    }
  }

  void visit(const WN& wn) {
    switch (wn.opr()) {
      case Opr::FuncEntry: {
        check_st(wn);
        if (wn.kid_count() == 0) {
          fail(wn, "missing body");
          break;
        }
        for (std::size_t i = 0; i + 1 < wn.kid_count(); ++i) {
          if (wn.kid(i)->opr() != Opr::Idname) fail(wn, "formal kid is not IDNAME");
        }
        if (wn.kid(wn.kid_count() - 1)->opr() != Opr::Block) fail(wn, "body is not BLOCK");
        break;
      }
      case Opr::Block:
        for (std::size_t i = 0; i < wn.kid_count(); ++i) {
          if (!opr_is_stmt(wn.kid(i)->opr())) fail(wn, "BLOCK kid is not a statement");
        }
        break;
      case Opr::Stid:
        check_st(wn);
        expect_kids(wn, 1);
        expect_expr_kids(wn);
        break;
      case Opr::Istore:
        expect_kids(wn, 2);
        if (wn.kid_count() == 2 && wn.kid(1)->opr() != Opr::Array &&
            wn.kid(1)->opr() != Opr::Coindex) {
          fail(wn, "ISTORE address kid must be ARRAY/COINDEX at H-WHIRL");
        }
        break;
      case Opr::Iload:
        expect_kids(wn, 1);
        if (wn.kid_count() == 1 && wn.kid(0)->opr() != Opr::Array &&
            wn.kid(0)->opr() != Opr::Coindex) {
          fail(wn, "ILOAD address kid must be ARRAY/COINDEX at H-WHIRL");
        }
        break;
      case Opr::Coindex:
        expect_kids(wn, 2);
        if (wn.kid_count() == 2 && wn.kid(0)->opr() != Opr::Array) {
          fail(wn, "COINDEX kid0 must be ARRAY");
        }
        break;
      case Opr::Array: {
        // kid_count == 2n+1 (paper: num_dim = kid_count >> 1)
        if (wn.kid_count() < 3 || wn.kid_count() % 2 == 0) {
          fail(wn, "ARRAY kid_count must be odd and >= 3");
          break;
        }
        const WN* base = wn.array_base();
        if (base->opr() != Opr::Lda && base->opr() != Opr::Ldid) {
          fail(wn, "ARRAY base must be LDA or LDID");
        } else if (base->st_idx() == kInvalidSt) {
          fail(wn, "ARRAY base has no symbol");
        }
        if (wn.element_size() == 0) fail(wn, "ARRAY element_size is zero");
        expect_expr_kids(wn);
        break;
      }
      case Opr::DoLoop: {
        expect_kids(wn, 5);
        if (wn.kid_count() == 5) {
          if (wn.loop_idname()->opr() != Opr::Idname) fail(wn, "kid0 must be IDNAME");
          if (wn.loop_body()->opr() != Opr::Block) fail(wn, "kid4 must be BLOCK");
        }
        break;
      }
      case Opr::DoWhile:
        expect_kids(wn, 2);
        if (wn.kid_count() == 2 && wn.kid(1)->opr() != Opr::Block) fail(wn, "kid1 must be BLOCK");
        break;
      case Opr::If:
        expect_kids(wn, 3);
        if (wn.kid_count() == 3) {
          if (wn.kid(1)->opr() != Opr::Block) fail(wn, "then kid must be BLOCK");
          if (wn.kid(2)->opr() != Opr::Block) fail(wn, "else kid must be BLOCK");
        }
        break;
      case Opr::Call:
        check_st(wn);
        for (std::size_t i = 0; i < wn.kid_count(); ++i) {
          if (wn.kid(i)->opr() != Opr::Parm) fail(wn, "CALL kid is not PARM");
        }
        break;
      case Opr::Intrinsic:
        if (wn.str_val().empty()) fail(wn, "INTRINSIC has no name");
        for (std::size_t i = 0; i < wn.kid_count(); ++i) {
          if (wn.kid(i)->opr() != Opr::Parm) fail(wn, "INTRINSIC kid is not PARM");
        }
        break;
      case Opr::Parm:
        expect_kids(wn, 1);
        break;
      case Opr::Ldid:
      case Opr::Lda:
      case Opr::Idname:
        check_st(wn);
        expect_kids(wn, 0);
        break;
      case Opr::Intconst:
      case Opr::Fconst:
      case Opr::Return:
        expect_kids(wn, 0);
        break;
      case Opr::Pragma:
        if (wn.str_val().empty()) fail(wn, "PRAGMA has no payload");
        break;
      case Opr::Neg:
      case Opr::Lnot:
      case Opr::Cvt:
        expect_kids(wn, 1);
        break;
      default:
        if (opr_is_binary(wn.opr())) expect_kids(wn, 2);
        break;
    }
    for (std::size_t i = 0; i < wn.kid_count(); ++i) {
      if (wn.kid(i)->parent() != &wn) fail(wn, "kid parent link broken");
      visit(*wn.kid(i));
    }
  }

  const SymbolTable& symtab_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> verify_tree(const WN& root, const SymbolTable& symtab) {
  return Verifier(symtab).run(root);
}

std::vector<std::string> verify_program(const Program& program) {
  std::vector<std::string> all;
  for (const ProcedureIR& p : program.procedures) {
    if (!p.tree) {
      all.push_back("procedure without tree: " + program.symtab.st(p.proc_st).name);
      continue;
    }
    auto errs = verify_tree(*p.tree, program.symtab);
    for (std::string& e : errs) {
      all.push_back(program.symtab.st(p.proc_st).name + ": " + e);
    }
  }
  return all;
}

}  // namespace ara::ir
