// Symbol (ST) and type (TY) tables. The paper's extraction walks WHIRL nodes
// and follows their ST_IDX / TY_IDX fields into the symbol tables to recover
// array names, dimension counts, per-dimension sizes, element sizes and data
// types (§IV-B, Table I). This module is that substrate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/mtype.hpp"
#include "support/source_location.hpp"

namespace ara::ir {

/// Index into the TY table. 0 is invalid.
using TyIdx = std::uint32_t;
/// Index into the ST table. 0 is invalid.
using StIdx = std::uint32_t;

inline constexpr TyIdx kInvalidTy = 0;
inline constexpr StIdx kInvalidSt = 0;

/// One array dimension with declared bounds, in *source* order and source
/// indexing (Fortran `A(1:200)` keeps lb=1; C `a[20]` has lb=0, ub=19).
/// Non-constant (variable-length / assumed-size) bounds are nullopt; the
/// paper displays the total size of such arrays as zero (§IV-C).
struct ArrayDim {
  std::optional<std::int64_t> lb;
  std::optional<std::int64_t> ub;
  /// When a bound is not a compile-time constant but is a plain scalar
  /// variable (e.g. `a(n)` for a formal n), its name is recorded here so the
  /// region analysis can still produce a symbolic triplet bound.
  std::string lb_sym;
  std::string ub_sym;

  [[nodiscard]] bool constant() const { return lb.has_value() && ub.has_value(); }
  /// Extent (number of elements); nullopt when bounds are not constant.
  [[nodiscard]] std::optional<std::int64_t> extent() const {
    if (!constant()) return std::nullopt;
    return *ub - *lb + 1;
  }
  friend bool operator==(const ArrayDim&, const ArrayDim&) = default;
};

enum class TyKind : std::uint8_t { Scalar, Array };

/// A type table entry.
struct Ty {
  TyKind kind = TyKind::Scalar;
  Mtype mtype = Mtype::Void;       // scalar type, or array element type
  std::vector<ArrayDim> dims;      // arrays only, source order
  bool row_major = true;           // C: true; Fortran: false (column-major)
  bool noncontiguous = false;      // F90 dope-vector view; element_size shown negative
  bool coarray = false;            // declared with a codimension (CAF)

  [[nodiscard]] bool is_array() const { return kind == TyKind::Array; }
  [[nodiscard]] std::size_t rank() const { return dims.size(); }

  /// Element size in bytes (always positive; the WHIRL ARRAY node negates it
  /// for non-contiguous arrays, cf. §IV-C).
  [[nodiscard]] std::int64_t element_size() const {
    return static_cast<std::int64_t>(mtype_size(mtype));
  }

  /// Total number of elements; nullopt if any bound is non-constant.
  [[nodiscard]] std::optional<std::int64_t> total_elements() const;

  /// Total allocated bytes; nullopt if any bound is non-constant.
  [[nodiscard]] std::optional<std::int64_t> size_bytes() const;
};

enum class StClass : std::uint8_t {
  Var,     // scalar or array variable
  Formal,  // procedure formal parameter
  Proc,    // procedure entry
};

enum class StStorage : std::uint8_t {
  Global,  // file-scope / COMMON / SAVE
  Local,   // procedure-local
  Formal,  // parameter (no storage of its own; aliases the actual)
};

/// A symbol table entry.
struct St {
  std::string name;
  StClass sclass = StClass::Var;
  StStorage storage = StStorage::Local;
  TyIdx ty = kInvalidTy;
  StIdx owner_proc = kInvalidSt;  // enclosing procedure; 0 for globals/procs
  SourceLoc loc;                  // declaration position
  FileId file = kInvalidFileId;   // defining file (for the File column)
  std::uint32_t formal_pos = 0;   // 1-based position among formals (Formal only)
  std::uint64_t addr = 0;         // static address assigned by DataLayout (Mem_Loc)
};

/// Flat program-wide symbol/type tables (our equivalent of Open64's
/// global+local symtab stack). Scoped name resolution is the front end's job;
/// the tables only provide identity and attributes.
class SymbolTable {
 public:
  SymbolTable();

  TyIdx make_scalar_ty(Mtype m);
  TyIdx make_array_ty(Mtype elem, std::vector<ArrayDim> dims, bool row_major,
                      bool noncontiguous = false, bool coarray = false);

  StIdx make_st(St st);

  [[nodiscard]] const Ty& ty(TyIdx idx) const;
  [[nodiscard]] const St& st(StIdx idx) const;
  [[nodiscard]] St& st_mutable(StIdx idx);

  [[nodiscard]] std::size_t ty_count() const { return tys_.size() - 1; }
  [[nodiscard]] std::size_t st_count() const { return sts_.size() - 1; }

  /// Iterates all valid StIdx values (1..st_count).
  [[nodiscard]] std::vector<StIdx> all_sts() const;

  /// First procedure ST with this (case-insensitive) name, if any.
  [[nodiscard]] std::optional<StIdx> find_proc(std::string_view name) const;

 private:
  std::vector<Ty> tys_;  // slot 0 unused
  std::vector<St> sts_;  // slot 0 unused
};

}  // namespace ara::ir
