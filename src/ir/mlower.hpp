// H-WHIRL -> M-WHIRL lowering. WHIRL "consists of five levels" (§IV-B) and
// the paper's extension deliberately operates at the high levels "since the
// form of array subscripting is preserved via ARRAY operator"; at lower
// levels "arrays lose their structures" (§II, on why hardware counters can't
// do this job). This pass makes that concrete: every ARRAY (and COINDEX)
// node is replaced by the explicit address arithmetic it denotes,
//
//     base + esize * sum_i( y_i * prod_{j>i} h_j )
//
// after which the region analysis can no longer see any array reference —
// the ablation bench_whirl_levels measures exactly that drop.
#pragma once

#include "ir/program.hpp"

namespace ara::ir {

/// Deep copy of a WHIRL tree.
[[nodiscard]] WNPtr clone_tree(const WN& wn);

/// Lowers one tree: ARRAY/COINDEX nodes become ADD/MPY address expressions.
[[nodiscard]] WNPtr lower_tree_to_m(const WN& wn);

/// Lowers a whole program (sources and symbol tables are shared state and
/// copied verbatim; only the trees change).
[[nodiscard]] Program lower_program_to_m(const Program& program);

/// Counts ARRAY nodes in a tree (0 after lowering).
[[nodiscard]] std::size_t count_array_nodes(const WN& wn);

}  // namespace ara::ir
