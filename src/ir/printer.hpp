// Text dump of WHIRL trees in the spirit of Open64's ir_b2a: one node per
// line, indentation for nesting, symbol names resolved through the ST table.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace ara::ir {

[[nodiscard]] std::string dump_tree(const WN& root, const SymbolTable& symtab);
[[nodiscard]] std::string dump_program(const Program& program);

}  // namespace ara::ir
