// Address arithmetic for ARRAY nodes: the paper documents that OPR_ARRAY
// "uses (row-major, zero-based) to return an address" computed as
//   base + z * sum_{i=1..n} ( y_i * prod_{j=i+1..n} h_j )
// where h are the dimension-size kids, y the index kids and z the element
// size (§IV-C). This module evaluates that formula for constant trees, which
// the tests use to validate lowering against independently computed layouts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "ir/program.hpp"
#include "ir/wn.hpp"

namespace ara::ir {

/// Evaluates an expression tree of INTCONST / ADD / SUB / MPY / NEG /
/// MAX / MIN / DIV / MOD nodes; nullopt if any other operator appears.
[[nodiscard]] std::optional<std::int64_t> eval_const(const WN& wn);

/// Computes the byte address an ARRAY node denotes when all dimension-size
/// and index kids are constant. The base symbol's St::addr provides `base`.
/// Returns nullopt for non-constant kids or a non-LDA/LDID base.
[[nodiscard]] std::optional<std::uint64_t> eval_array_address(const WN& array,
                                                              const Program& program);

/// Same formula with caller-supplied zero-based indices (row-major order),
/// ignoring the node's own index kids. Used by property tests to compare an
/// ARRAY node against a reference layout.
[[nodiscard]] std::optional<std::uint64_t> eval_array_address_at(
    const WN& array, const Program& program, std::span<const std::int64_t> indices);

}  // namespace ara::ir
