// WHIRL operators. This is the subset of Open64/OpenUH's operator set needed
// to express the paper's input programs at H-WHIRL, where "array references
// must be explicit" via the n-ary OPR_ARRAY operator (§III, §IV-B).
#pragma once

#include <cstdint>
#include <string_view>

namespace ara::ir {

enum class Opr : std::uint8_t {
  // Structure
  FuncEntry,  // kid0 = body BLOCK; symbol = procedure ST
  Block,      // statement list
  Idname,     // formal parameter declaration (st_idx names the formal)

  // Statements
  Stid,     // store to scalar symbol; kid0 = rhs
  Istore,   // store through address; kid0 = rhs, kid1 = address (ARRAY)
  DoLoop,   // kid0=index IDNAME, kid1=init, kid2=comp (end), kid3=incr, kid4=body BLOCK
  DoWhile,  // kid0 = condition, kid1 = body BLOCK
  If,       // kid0 = condition, kid1 = then BLOCK, kid2 = else BLOCK
  Call,     // subroutine / function call; kids = PARM nodes; symbol = callee ST
  Return,
  Pragma,  // carries a directive string (e.g. OpenMP / acc), payload in str_val

  // Expressions
  Ldid,      // load scalar symbol
  Lda,       // address of symbol (array base)
  Iload,     // load through address; kid0 = address (usually ARRAY)
  Array,     // n-ary: kid0 = base LDA/LDID, kids 1..n = dim sizes, kids n+1..2n = indices
  Parm,      // call argument wrapper; kid0 = value
  Intconst,  // const_val
  Fconst,    // flt_val
  Add,
  Sub,
  Mpy,
  Div,
  Mod,
  Neg,
  Max,
  Min,
  // Comparisons (yield I4 0/1)
  Eq,
  Ne,
  Lt,
  Gt,
  Le,
  Ge,
  // Logical
  Land,
  Lior,
  Lnot,
  Cvt,  // type conversion; kid0 = value
  Intrinsic,  // intrinsic function (sqrt, abs, ...); name in str_val, kids = PARM
  Coindex,    // remote coarray address: kid0 = ARRAY, kid1 = image expression
};

[[nodiscard]] std::string_view opr_name(Opr op);

[[nodiscard]] constexpr bool opr_is_stmt(Opr op) {
  switch (op) {
    case Opr::Stid:
    case Opr::Istore:
    case Opr::DoLoop:
    case Opr::DoWhile:
    case Opr::If:
    case Opr::Call:
    case Opr::Return:
    case Opr::Pragma:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr bool opr_is_expr(Opr op) {
  switch (op) {
    case Opr::Ldid:
    case Opr::Lda:
    case Opr::Iload:
    case Opr::Array:
    case Opr::Parm:
    case Opr::Intconst:
    case Opr::Fconst:
    case Opr::Add:
    case Opr::Sub:
    case Opr::Mpy:
    case Opr::Div:
    case Opr::Mod:
    case Opr::Neg:
    case Opr::Max:
    case Opr::Min:
    case Opr::Eq:
    case Opr::Ne:
    case Opr::Lt:
    case Opr::Gt:
    case Opr::Le:
    case Opr::Ge:
    case Opr::Land:
    case Opr::Lior:
    case Opr::Lnot:
    case Opr::Cvt:
    case Opr::Intrinsic:
    case Opr::Coindex:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr bool opr_is_binary(Opr op) {
  switch (op) {
    case Opr::Add:
    case Opr::Sub:
    case Opr::Mpy:
    case Opr::Div:
    case Opr::Mod:
    case Opr::Max:
    case Opr::Min:
    case Opr::Eq:
    case Opr::Ne:
    case Opr::Lt:
    case Opr::Gt:
    case Opr::Le:
    case Opr::Ge:
    case Opr::Land:
    case Opr::Lior:
      return true;
    default:
      return false;
  }
}

}  // namespace ara::ir
