#include "ir/mlower.hpp"

namespace ara::ir {

namespace {

WNPtr clone_shallow(const WN& wn) {
  auto out = std::make_unique<WN>(wn.opr(), wn.rtype(), wn.desc());
  out->set_linenum(wn.linenum());
  out->set_offset(wn.offset());
  out->set_element_size(wn.element_size());
  out->set_const_val(wn.const_val());
  out->set_flt_val(wn.flt_val());
  out->set_st_idx(wn.st_idx());
  out->set_str_val(wn.str_val());
  return out;
}

WNPtr make_int(std::int64_t v) {
  auto wn = std::make_unique<WN>(Opr::Intconst, Mtype::I8);
  wn->set_const_val(v);
  return wn;
}

WNPtr make_bin(Opr op, WNPtr a, WNPtr b) {
  auto wn = std::make_unique<WN>(op, Mtype::U8);
  wn->attach(std::move(a));
  wn->attach(std::move(b));
  return wn;
}

/// The documented ARRAY address formula, spelled out as ADD/MPY nodes.
WNPtr lower_array(const WN& arr) {
  const std::size_t n = arr.num_dim();
  WNPtr base = lower_tree_to_m(*arr.array_base());
  WNPtr linear;  // sum_i ( y_i * prod_{j>i} h_j )
  for (std::size_t i = 0; i < n; ++i) {
    WNPtr term = lower_tree_to_m(*arr.array_index(i));
    for (std::size_t j = i + 1; j < n; ++j) {
      term = make_bin(Opr::Mpy, std::move(term), lower_tree_to_m(*arr.array_dim(j)));
    }
    linear = linear ? make_bin(Opr::Add, std::move(linear), std::move(term)) : std::move(term);
  }
  if (!linear) linear = make_int(0);
  const std::int64_t z =
      arr.element_size() < 0 ? -arr.element_size() : arr.element_size();
  WNPtr scaled = make_bin(Opr::Mpy, make_int(z), std::move(linear));
  WNPtr addr = make_bin(Opr::Add, std::move(base), std::move(scaled));
  addr->set_linenum(arr.linenum());
  return addr;
}

}  // namespace

WNPtr clone_tree(const WN& wn) {
  WNPtr out = clone_shallow(wn);
  for (std::size_t i = 0; i < wn.kid_count(); ++i) out->attach(clone_tree(*wn.kid(i)));
  return out;
}

WNPtr lower_tree_to_m(const WN& wn) {
  if (wn.opr() == Opr::Array) return lower_array(wn);
  if (wn.opr() == Opr::Coindex) {
    // At M level the one-sided transfer is just another address computation;
    // the image operand folds into an ADD (the runtime does the windowing).
    return make_bin(Opr::Add, lower_tree_to_m(*wn.kid(0)), lower_tree_to_m(*wn.kid(1)));
  }
  WNPtr out = clone_shallow(wn);
  for (std::size_t i = 0; i < wn.kid_count(); ++i) out->attach(lower_tree_to_m(*wn.kid(i)));
  return out;
}

Program lower_program_to_m(const Program& program) {
  Program out;
  out.sources = program.sources;
  out.symtab = program.symtab;
  for (const ProcedureIR& p : program.procedures) {
    ProcedureIR lowered;
    lowered.proc_st = p.proc_st;
    lowered.file = p.file;
    if (p.tree) lowered.tree = lower_tree_to_m(*p.tree);
    out.procedures.push_back(std::move(lowered));
  }
  return out;
}

std::size_t count_array_nodes(const WN& wn) {
  std::size_t n = 0;
  wn.walk([&n](const WN& node) {
    if (node.opr() == Opr::Array) ++n;
    return true;
  });
  return n;
}

}  // namespace ara::ir
