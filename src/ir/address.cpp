#include "ir/address.hpp"

#include <cstdlib>

namespace ara::ir {

std::optional<std::int64_t> eval_const(const WN& wn) {
  switch (wn.opr()) {
    case Opr::Intconst:
      return wn.const_val();
    case Opr::Neg: {
      const auto v = eval_const(*wn.kid(0));
      return v ? std::optional(-*v) : std::nullopt;
    }
    case Opr::Cvt:
      return eval_const(*wn.kid(0));
    case Opr::Add:
    case Opr::Sub:
    case Opr::Mpy:
    case Opr::Div:
    case Opr::Mod:
    case Opr::Max:
    case Opr::Min: {
      const auto a = eval_const(*wn.kid(0));
      const auto b = eval_const(*wn.kid(1));
      if (!a || !b) return std::nullopt;
      switch (wn.opr()) {
        case Opr::Add:
          return *a + *b;
        case Opr::Sub:
          return *a - *b;
        case Opr::Mpy:
          return *a * *b;
        case Opr::Div:
          return *b == 0 ? std::nullopt : std::optional(*a / *b);
        case Opr::Mod:
          return *b == 0 ? std::nullopt : std::optional(*a % *b);
        case Opr::Max:
          return std::max(*a, *b);
        case Opr::Min:
          return std::min(*a, *b);
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

namespace {

std::optional<std::uint64_t> base_address(const WN& base, const Program& program) {
  if (base.opr() != Opr::Lda && base.opr() != Opr::Ldid) return std::nullopt;
  if (base.st_idx() == kInvalidSt) return std::nullopt;
  return program.symtab.st(base.st_idx()).addr;
}

std::optional<std::uint64_t> address_with_indices(const WN& array, const Program& program,
                                                  std::span<const std::int64_t> y) {
  if (array.opr() != Opr::Array) return std::nullopt;
  const std::size_t n = array.num_dim();
  if (y.size() != n) return std::nullopt;
  const auto base = base_address(*array.array_base(), program);
  if (!base) return std::nullopt;

  // h_i = dimension sizes (kids 1..n).
  std::vector<std::int64_t> h(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = eval_const(*array.array_dim(i));
    if (!v) return std::nullopt;
    h[i] = *v;
  }
  // base + z * sum_i ( y_i * prod_{j>i} h_j )
  const std::int64_t z = std::llabs(array.element_size());
  std::int64_t linear = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t mult = 1;
    for (std::size_t j = i + 1; j < n; ++j) mult *= h[j];
    linear += y[i] * mult;
  }
  return *base + static_cast<std::uint64_t>(z * linear);
}

}  // namespace

std::optional<std::uint64_t> eval_array_address(const WN& array, const Program& program) {
  if (array.opr() != Opr::Array) return std::nullopt;
  const std::size_t n = array.num_dim();
  std::vector<std::int64_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = eval_const(*array.array_index(i));
    if (!v) return std::nullopt;
    y[i] = *v;
  }
  return address_with_indices(array, program, y);
}

std::optional<std::uint64_t> eval_array_address_at(const WN& array, const Program& program,
                                                   std::span<const std::int64_t> indices) {
  return address_with_indices(array, program, indices);
}

}  // namespace ara::ir
