// Convenience constructors for WHIRL trees. The front end's lowering and the
// unit tests build IR exclusively through these, which keeps the structural
// invariants (checked by the verifier) in one place.
#pragma once

#include <memory>
#include <vector>

#include "ir/wn.hpp"

namespace ara::ir {

class WNBuilder {
 public:
  explicit WNBuilder(const SymbolTable& symtab) : symtab_(symtab) {}

  [[nodiscard]] WNPtr intconst(std::int64_t v, Mtype t = Mtype::I8) const;
  [[nodiscard]] WNPtr fconst(double v, Mtype t = Mtype::F8) const;
  [[nodiscard]] WNPtr ldid(StIdx st) const;
  [[nodiscard]] WNPtr lda(StIdx st) const;
  [[nodiscard]] WNPtr idname(StIdx st) const;
  [[nodiscard]] WNPtr binop(Opr op, WNPtr lhs, WNPtr rhs, Mtype t) const;
  [[nodiscard]] WNPtr neg(WNPtr v, Mtype t) const;
  [[nodiscard]] WNPtr cvt(WNPtr v, Mtype to) const;

  /// ARRAY node per the documented layout: kid0 = base, kids 1..n = dim
  /// sizes, kids n+1..2n = zero-based index expressions. `dims` and
  /// `indices` must be in row-major order (outermost dimension first);
  /// Fortran lowering reverses its source order before calling this.
  /// `element_size` is negated by the caller for non-contiguous arrays.
  [[nodiscard]] WNPtr array(WNPtr base, std::vector<WNPtr> dims, std::vector<WNPtr> indices,
                            std::int64_t element_size) const;

  /// Remote coarray address (the §VI PGAS extension): kid0 = the local
  /// ARRAY address form, kid1 = the image expression.
  [[nodiscard]] WNPtr coindex(WNPtr array, WNPtr image) const;

  [[nodiscard]] WNPtr iload(WNPtr address, Mtype t) const;
  [[nodiscard]] WNPtr istore(WNPtr value, WNPtr address, Mtype t) const;
  [[nodiscard]] WNPtr stid(StIdx st, WNPtr value) const;
  [[nodiscard]] WNPtr block() const;

  /// DO_LOOP with kids (IDNAME index, init, end-comparison value, step, body).
  /// Represents `for (i = init; i <= end; i += step)` when step > 0 and
  /// `i >= end` when step < 0, matching a Fortran DO.
  [[nodiscard]] WNPtr do_loop(StIdx index_var, WNPtr init, WNPtr end, WNPtr step,
                              WNPtr body) const;

  [[nodiscard]] WNPtr if_stmt(WNPtr cond, WNPtr then_block, WNPtr else_block) const;
  [[nodiscard]] WNPtr parm(WNPtr value) const;
  [[nodiscard]] WNPtr call(StIdx callee, std::vector<WNPtr> args) const;
  [[nodiscard]] WNPtr intrinsic(std::string name, std::vector<WNPtr> args, Mtype t) const;
  [[nodiscard]] WNPtr ret() const;
  [[nodiscard]] WNPtr pragma(std::string text) const;
  [[nodiscard]] WNPtr func_entry(StIdx proc, std::vector<StIdx> formals, WNPtr body) const;

 private:
  [[nodiscard]] Mtype st_mtype(StIdx st) const;

  const SymbolTable& symtab_;
};

}  // namespace ara::ir
