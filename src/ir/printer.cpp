#include "ir/printer.hpp"

#include <sstream>

namespace ara::ir {

namespace {

void dump(const WN& wn, const SymbolTable& symtab, int depth, std::ostringstream& os) {
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ') << opr_name(wn.opr());
  if (wn.rtype() != Mtype::Void) os << ' ' << mtype_name(wn.rtype());
  if (wn.st_idx() != kInvalidSt && wn.st_idx() <= symtab.st_count()) {
    os << " <" << symtab.st(wn.st_idx()).name << '>';
  }
  switch (wn.opr()) {
    case Opr::Intconst:
      os << ' ' << wn.const_val();
      break;
    case Opr::Fconst:
      os << ' ' << wn.flt_val();
      break;
    case Opr::Array:
      os << " esize=" << wn.element_size() << " ndim=" << wn.num_dim();
      break;
    case Opr::Pragma:
    case Opr::Intrinsic:
      os << " \"" << wn.str_val() << '"';
      break;
    default:
      break;
  }
  if (wn.linenum().valid()) os << "  {line " << wn.linenum().line << '}';
  os << '\n';
  for (std::size_t i = 0; i < wn.kid_count(); ++i) dump(*wn.kid(i), symtab, depth + 1, os);
}

}  // namespace

std::string dump_tree(const WN& root, const SymbolTable& symtab) {
  std::ostringstream os;
  dump(root, symtab, 0, os);
  return os.str();
}

std::string dump_program(const Program& program) {
  std::ostringstream os;
  for (const ProcedureIR& p : program.procedures) {
    os << "=== " << program.symtab.st(p.proc_st).name << " ("
       << program.sources.name(p.file) << ") ===\n";
    if (p.tree) os << dump_tree(*p.tree, program.symtab);
  }
  return os.str();
}

}  // namespace ara::ir
