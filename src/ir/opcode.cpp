#include "ir/opcode.hpp"

namespace ara::ir {

std::string_view opr_name(Opr op) {
  switch (op) {
    case Opr::FuncEntry:
      return "FUNC_ENTRY";
    case Opr::Block:
      return "BLOCK";
    case Opr::Idname:
      return "IDNAME";
    case Opr::Stid:
      return "STID";
    case Opr::Istore:
      return "ISTORE";
    case Opr::DoLoop:
      return "DO_LOOP";
    case Opr::DoWhile:
      return "DO_WHILE";
    case Opr::If:
      return "IF";
    case Opr::Call:
      return "CALL";
    case Opr::Return:
      return "RETURN";
    case Opr::Pragma:
      return "PRAGMA";
    case Opr::Ldid:
      return "LDID";
    case Opr::Lda:
      return "LDA";
    case Opr::Iload:
      return "ILOAD";
    case Opr::Array:
      return "ARRAY";
    case Opr::Parm:
      return "PARM";
    case Opr::Intconst:
      return "INTCONST";
    case Opr::Fconst:
      return "FCONST";
    case Opr::Add:
      return "ADD";
    case Opr::Sub:
      return "SUB";
    case Opr::Mpy:
      return "MPY";
    case Opr::Div:
      return "DIV";
    case Opr::Mod:
      return "MOD";
    case Opr::Neg:
      return "NEG";
    case Opr::Max:
      return "MAX";
    case Opr::Min:
      return "MIN";
    case Opr::Eq:
      return "EQ";
    case Opr::Ne:
      return "NE";
    case Opr::Lt:
      return "LT";
    case Opr::Gt:
      return "GT";
    case Opr::Le:
      return "LE";
    case Opr::Ge:
      return "GE";
    case Opr::Land:
      return "LAND";
    case Opr::Lior:
      return "LIOR";
    case Opr::Lnot:
      return "LNOT";
    case Opr::Cvt:
      return "CVT";
    case Opr::Intrinsic:
      return "INTRINSIC";
    case Opr::Coindex:
      return "COINDEX";
  }
  return "?";
}

}  // namespace ara::ir
