#include "ir/program.hpp"

#include "support/string_utils.hpp"

namespace ara::ir {

const ProcedureIR* Program::find_procedure(std::string_view name) const {
  for (const ProcedureIR& p : procedures) {
    if (iequals(symtab.st(p.proc_st).name, name)) return &p;
  }
  return nullptr;
}

const ProcedureIR* Program::find_procedure(StIdx proc_st) const {
  for (const ProcedureIR& p : procedures) {
    if (p.proc_st == proc_st) return &p;
  }
  return nullptr;
}

std::string Program::owner_name(StIdx st) const {
  const StIdx owner = symtab.st(st).owner_proc;
  return owner == kInvalidSt ? std::string() : symtab.st(owner).name;
}

}  // namespace ara::ir
