#include "ir/layout.hpp"

#include <algorithm>
#include <map>

namespace ara::ir {

namespace {

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) { return (v + a - 1) / a * a; }

}  // namespace

void assign_layout(Program& program, const LayoutOptions& opts) {
  std::uint64_t global_cursor = opts.global_base;
  // One cursor for all locals: in a real process distinct frames give
  // distinct addresses, and Mem_Loc exists precisely to tell arrays apart
  // ("find arrays pointing to the same memory location"), so locals of
  // different procedures must never collide.
  std::uint64_t local_cursor = opts.local_base;

  for (StIdx idx : program.symtab.all_sts()) {
    St& st = program.symtab.st_mutable(idx);
    if (st.sclass == StClass::Proc) continue;
    if (st.storage == StStorage::Formal) {
      st.addr = 0;  // no storage; aliases the actual argument
      continue;
    }
    const Ty& ty = program.symtab.ty(st.ty);
    const std::uint64_t align = std::max<std::uint64_t>(
        opts.min_align, static_cast<std::uint64_t>(ty.element_size() ? ty.element_size() : 1));
    const auto bytes = ty.size_bytes();
    const std::uint64_t size = bytes && *bytes > 0 ? static_cast<std::uint64_t>(*bytes) : align;

    if (st.storage == StStorage::Global) {
      global_cursor = align_up(global_cursor, align);
      st.addr = global_cursor;
      global_cursor += size;
    } else {
      local_cursor = align_up(local_cursor, align);
      st.addr = local_cursor;
      local_cursor += size;
    }
  }
}

}  // namespace ara::ir
