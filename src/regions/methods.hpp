// The array-analysis technique taxonomy of Fig 2, implemented side by side so
// the efficiency/accuracy trade-off the figure sketches can be measured
// (bench_fig2_techniques):
//
//   * ClassicSummary       — "two bits to represent array summaries": DEF/USE
//                            flags for the whole array; most storage-
//                            efficient, least precise (§III).
//   * ReferenceList        — Linearization / Atom-Images style: every touched
//                            element is recorded; exact but memory-hungry.
//   * RegularSection       — Havlak–Kennedy bounded regular sections: one
//                            [lb:ub:stride] triplet per dimension, merged
//                            conservatively.
//   * ConvexRegion/Region  — the linear-constraint Regions method (see
//                            convex_region.hpp), most precise for
//                            non-rectangular shapes but needs FM to compare.
//
// All four expose the same probe API (record / may_access / bytes_used) used
// by the comparison bench and by property tests that check the accuracy
// ordering: ReferenceList ⊆ RegularSection ⊆ Classic coverage.
#pragma once

#include <cstdint>
#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "regions/access.hpp"
#include "regions/region.hpp"

namespace ara::regions {

/// Index vector of one element access.
using Point = std::vector<std::int64_t>;

/// Classic method: one bit per mode, whole-array granularity.
class ClassicSummary {
 public:
  void record(AccessMode mode, const Point& /*unused*/) {
    if (mode == AccessMode::Def) def_ = true;
    if (mode == AccessMode::Use) use_ = true;
  }
  [[nodiscard]] bool may_access(AccessMode mode, const Point& /*unused*/) const {
    return mode == AccessMode::Def ? def_ : use_;
  }
  [[nodiscard]] bool defined() const { return def_; }
  [[nodiscard]] bool used() const { return use_; }
  [[nodiscard]] static std::size_t bytes_used() { return 1; }  // two bits, rounded up

 private:
  bool def_ = false;
  bool use_ = false;
};

/// Reference-list method: stores every referenced element.
class ReferenceList {
 public:
  void record(AccessMode mode, const Point& p) { list(mode).insert(p); }
  [[nodiscard]] bool may_access(AccessMode mode, const Point& p) const {
    return list(mode).count(p) != 0;
  }
  [[nodiscard]] std::size_t element_count(AccessMode mode) const { return list(mode).size(); }
  /// The exact touched-element set for one mode (the differential harness
  /// iterates this to check static-region containment point by point).
  [[nodiscard]] const std::set<Point>& points(AccessMode mode) const { return list(mode); }
  [[nodiscard]] std::size_t bytes_used() const;

 private:
  using Set = std::set<Point>;
  [[nodiscard]] Set& list(AccessMode mode) { return lists_[static_cast<std::size_t>(mode)]; }
  [[nodiscard]] const Set& list(AccessMode mode) const {
    return lists_[static_cast<std::size_t>(mode)];
  }
  Set lists_[4];
};

/// Bounded regular sections: a single triplet region per mode, widened on
/// each recorded access. Merging follows the Havlak–Kennedy rules: bounds
/// take min/max, strides merge by gcd of the strides and the offset between
/// the sections' phases.
class RegularSection {
 public:
  void record(AccessMode mode, const Point& p);
  [[nodiscard]] bool may_access(AccessMode mode, const Point& p) const;
  [[nodiscard]] const std::optional<Region>& section(AccessMode mode) const {
    return sections_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] std::size_t bytes_used() const;

 private:
  std::optional<Region> sections_[4];
};

}  // namespace ara::regions
