// Region bounds. OpenUH's ARA maps each bound to one of four value kinds
// (CONST, IVAR, LINDEX, SUBSCR) and marks bounds whose expressions "cannot be
// linearized" as MESSY or UNPROJECTED (§IV-C, citing [18]). We keep that
// taxonomy: the kind records provenance, and — when representable — the
// affine expression carries the value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "regions/linexpr.hpp"

namespace ara::regions {

enum class BoundKind : std::uint8_t {
  Const,        // a compile-time constant
  IVar,         // derived from a loop induction variable's bound
  LIndex,       // a linearized index expression
  Subscr,       // taken directly from a subscript expression
  Messy,        // not affine; no expression available
  Unprojected,  // projection failed (e.g. FM could not isolate the variable)
};

[[nodiscard]] std::string_view to_string(BoundKind k);

struct Bound {
  BoundKind kind = BoundKind::Messy;
  LinExpr expr;  // meaningful unless kind is Messy/Unprojected

  [[nodiscard]] static Bound constant(std::int64_t v) {
    return Bound{BoundKind::Const, LinExpr(v)};
  }
  [[nodiscard]] static Bound affine(BoundKind k, LinExpr e) {
    // A symbolic bound that folded to a constant is a constant.
    if (e.is_constant()) return Bound{BoundKind::Const, std::move(e)};
    return Bound{k, std::move(e)};
  }
  [[nodiscard]] static Bound messy() { return Bound{BoundKind::Messy, LinExpr()}; }
  [[nodiscard]] static Bound unprojected() { return Bound{BoundKind::Unprojected, LinExpr()}; }

  [[nodiscard]] bool known() const {
    return kind != BoundKind::Messy && kind != BoundKind::Unprojected;
  }
  [[nodiscard]] bool is_const() const { return kind == BoundKind::Const; }
  [[nodiscard]] std::optional<std::int64_t> const_value() const {
    if (!known() || !expr.is_constant()) return std::nullopt;
    return expr.constant();
  }

  /// Display form: constants as numbers, affine bounds as expressions,
  /// messy/unprojected as their tag (the GUI shows these markers verbatim).
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Bound&, const Bound&) = default;
};

}  // namespace ara::regions
