#include "regions/linsys.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "obs/histogram.hpp"
#include "obs/stats.hpp"

namespace ara::regions {

ARA_STATISTIC(stat_fm_eliminations, "regions.fm_eliminations",
              "Fourier-Motzkin variable eliminations performed");
ARA_STATISTIC(stat_fm_substitutions, "regions.fm_substitutions",
              "Eliminations resolved by exact equality substitution");
ARA_STATISTIC(stat_fm_pairs, "regions.fm_pairs_combined",
              "Upper/lower constraint pairs combined during FM elimination");
ARA_STATISTIC(stat_fm_capped, "regions.fm_growth_caps",
              "FM results truncated by the constraint growth cap");
ARA_STATISTIC(stat_feasibility, "regions.feasibility_checks",
              "Rational feasibility queries answered");

ARA_HISTOGRAM(hist_fm_eliminate, "regions.fm_eliminate_ns",
              "Latency of one Fourier-Motzkin variable elimination", "ns");

std::string Constraint::str() const {
  return expr.str() + (rel == Rel::Le0 ? " <= 0" : " == 0");
}

Constraint make_le(const LinExpr& a, const LinExpr& b) {
  return Constraint{a - b, Constraint::Rel::Le0};
}
Constraint make_ge(const LinExpr& a, const LinExpr& b) {
  return Constraint{b - a, Constraint::Rel::Le0};
}
Constraint make_eq(const LinExpr& a, const LinExpr& b) {
  return Constraint{a - b, Constraint::Rel::Eq0};
}

void LinSystem::add_all(const LinSystem& other) {
  constraints_.insert(constraints_.end(), other.constraints_.begin(), other.constraints_.end());
}

std::vector<std::string> LinSystem::variables() const {
  std::set<std::string> names;
  for (const Constraint& c : constraints_) {
    for (const auto& [name, coef] : c.expr.terms()) names.insert(name);
  }
  return {names.begin(), names.end()};
}

LinSystem LinSystem::eliminated(std::string_view name) const {
  stat_fm_eliminations.bump();
  obs::ScopedLatency fm_latency(hist_fm_eliminate);
  // If an equality has coefficient +/-1 on the variable, substitute — exact
  // and avoids the quadratic FM blowup.
  for (const Constraint& c : constraints_) {
    if (c.rel != Constraint::Rel::Eq0) continue;
    const std::int64_t k = c.expr.coef(name);
    if (k != 1 && k != -1) continue;
    // k*name + rest == 0  =>  name == -rest/k == -k*rest (k is +/-1).
    LinExpr rest = c.expr - LinExpr::var(std::string(name), k);
    const LinExpr value = rest * -k;
    LinSystem out;
    for (const Constraint& other : constraints_) {
      if (&other == &c) continue;
      Constraint subst{other.expr.substituted(name, value), other.rel};
      out.add(std::move(subst));
    }
    out.simplify();
    stat_fm_substitutions.bump();
    return out;
  }

  std::vector<LinExpr> uppers;  // a > 0 : a*x + r <= 0
  std::vector<LinExpr> lowers;  // a < 0 : a*x + r <= 0
  LinSystem out;
  for (const Constraint& c : constraints_) {
    const std::int64_t a = c.expr.coef(name);
    if (a == 0) {
      out.add(c);
      continue;
    }
    if (c.rel == Constraint::Rel::Eq0) {
      // Expand equality into <= pair.
      if (a > 0) {
        uppers.push_back(c.expr);
        lowers.push_back(-c.expr);
      } else {
        lowers.push_back(c.expr);
        uppers.push_back(-c.expr);
      }
      continue;
    }
    (a > 0 ? uppers : lowers).push_back(c.expr);
  }

  // Combine each (upper, lower) pair: e1 = a*x + r1 (a>0), e2 = b*x + r2
  // (b<0). Then (-b)*e1 + a*e2 eliminates x: a*r2 - b*r1 <= 0.
  stat_fm_pairs.bump(uppers.size() * lowers.size());
  for (const LinExpr& e1 : uppers) {
    const std::int64_t a = e1.coef(name);
    for (const LinExpr& e2 : lowers) {
      const std::int64_t b = e2.coef(name);
      const std::int64_t g = std::gcd(a, -b);
      LinExpr combined = e1 * ((-b) / g) + e2 * (a / g);
      out.add(Constraint{std::move(combined), Constraint::Rel::Le0});
    }
  }
  out.simplify();
  // Sound growth cap (see kMaxConstraints): dropping constraints can only
  // make the system easier to satisfy, never refute a satisfiable one.
  if (out.constraints_.size() > kMaxConstraints) {
    out.constraints_.resize(kMaxConstraints);
    stat_fm_capped.bump();
  }
  return out;
}

bool LinSystem::feasible() const {
  stat_feasibility.bump();
  LinSystem cur = *this;
  // Eliminate variables one at a time; order by fewest occurrences to keep
  // the intermediate systems small (greedy min-fill heuristic).
  while (true) {
    auto vars = cur.variables();
    if (vars.empty()) break;
    std::string best = vars.front();
    std::size_t best_count = static_cast<std::size_t>(-1);
    for (const std::string& v : vars) {
      std::size_t count = 0;
      for (const Constraint& c : cur.constraints_) {
        if (c.expr.references(v)) ++count;
      }
      if (count < best_count) {
        best_count = count;
        best = v;
      }
    }
    cur = cur.eliminated(best);
  }
  for (const Constraint& c : cur.constraints_) {
    const std::int64_t v = c.expr.constant();
    if (c.rel == Constraint::Rel::Le0 && v > 0) return false;
    if (c.rel == Constraint::Rel::Eq0 && v != 0) return false;
  }
  return true;
}

LinSystem::ConstBounds LinSystem::const_bounds(std::string_view name) const {
  LinSystem cur = *this;
  while (true) {
    auto vars = cur.variables();
    std::erase(vars, std::string(name));
    if (vars.empty()) break;
    cur = cur.eliminated(vars.front());
  }
  ConstBounds out;
  auto floor_div = [](std::int64_t a, std::int64_t b) {
    // b > 0
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  };
  auto ceil_div = [&floor_div](std::int64_t a, std::int64_t b) { return -floor_div(-a, b); };
  for (const Constraint& c : cur.constraints_) {
    const std::int64_t a = c.expr.coef(name);
    if (a == 0) continue;
    const std::int64_t r = c.expr.constant();
    if (a > 0 || c.rel == Constraint::Rel::Eq0) {
      // a*x + r <= 0 (a>0)  =>  x <= floor(-r/a)
      const std::int64_t coef = a > 0 ? a : -a;
      const std::int64_t rr = a > 0 ? r : -r;
      const std::int64_t ub = floor_div(-rr, coef);
      if (!out.upper || ub < *out.upper) out.upper = ub;
    }
    if (a < 0 || c.rel == Constraint::Rel::Eq0) {
      // a*x + r <= 0 (a<0)  =>  x >= ceil(r/(-a))
      const std::int64_t coef = a < 0 ? -a : a;
      const std::int64_t rr = a < 0 ? r : -r;
      const std::int64_t lb = ceil_div(rr, coef);
      if (!out.lower || lb > *out.lower) out.lower = lb;
    }
  }
  return out;
}

void LinSystem::simplify() {
  // Normalize by the gcd of all coefficients (constant included for
  // equalities; for <= the constant may shrink only by the variable gcd,
  // which keeps the constraint equivalent over the rationals and no looser
  // over the integers).
  for (Constraint& c : constraints_) {
    std::int64_t g = 0;
    for (const auto& [name, coef] : c.expr.terms()) {
      g = std::gcd(g, coef < 0 ? -coef : coef);
    }
    if (g > 1 && c.expr.constant() % g == 0) {
      LinExpr scaled;
      for (const auto& [name, coef] : c.expr.terms()) {
        scaled += LinExpr::var(name, coef / g);
      }
      scaled += LinExpr(c.expr.constant() / g);
      c.expr = std::move(scaled);
    }
  }
  std::vector<Constraint> kept;
  for (Constraint& c : constraints_) {
    if (c.expr.is_constant()) {
      // Trivially true constraints vanish; trivially false ones are kept so
      // feasibility still detects the contradiction.
      const bool trivially_true = c.rel == Constraint::Rel::Le0 ? c.expr.constant() <= 0
                                                                : c.expr.constant() == 0;
      if (trivially_true) continue;
    }
    if (std::find(kept.begin(), kept.end(), c) == kept.end()) kept.push_back(std::move(c));
  }
  constraints_ = std::move(kept);
}

std::string LinSystem::str() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != 0) os << ", ";
    os << constraints_[i].str();
  }
  os << '}';
  return os.str();
}

}  // namespace ara::regions
