#include "regions/linsys.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "obs/histogram.hpp"
#include "obs/stats.hpp"

namespace ara::regions {

ARA_STATISTIC(stat_fm_eliminations, "regions.fm_eliminations",
              "Fourier-Motzkin variable eliminations performed");
ARA_STATISTIC(stat_fm_substitutions, "regions.fm_substitutions",
              "Eliminations resolved by exact equality substitution");
ARA_STATISTIC(stat_fm_pairs, "regions.fm_pairs_combined",
              "Upper/lower constraint pairs combined during FM elimination");
ARA_STATISTIC(stat_fm_capped, "regions.fm_growth_caps",
              "FM results truncated by the constraint growth cap");
ARA_STATISTIC(stat_feasibility, "regions.feasibility_checks",
              "Rational feasibility queries answered");

ARA_HISTOGRAM(hist_fm_eliminate, "regions.fm_eliminate_ns",
              "Latency of one Fourier-Motzkin variable elimination", "ns");

std::string Constraint::str() const {
  return expr.str() + (rel == Rel::Le0 ? " <= 0" : " == 0");
}

Constraint make_le(const LinExpr& a, const LinExpr& b) {
  return Constraint{a - b, Constraint::Rel::Le0};
}
Constraint make_ge(const LinExpr& a, const LinExpr& b) {
  return Constraint{b - a, Constraint::Rel::Le0};
}
Constraint make_eq(const LinExpr& a, const LinExpr& b) {
  return Constraint{a - b, Constraint::Rel::Eq0};
}

void LinSystem::add_all(const LinSystem& other) {
  constraints_.insert(constraints_.end(), other.constraints_.begin(), other.constraints_.end());
}

std::vector<support::VarId> LinSystem::variable_ids() const {
  // Collect ids (cheap integer dedup), then order by *name*: elimination
  // sequencing keys off this order and must match the map era exactly.
  std::vector<support::VarId> ids;
  for (const Constraint& c : constraints_) {
    for (const Term& t : c.expr.terms()) ids.push_back(t.id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::sort(ids.begin(), ids.end(), [](support::VarId a, support::VarId b) {
    return support::var_name(a) < support::var_name(b);
  });
  return ids;
}

std::vector<std::string> LinSystem::variables() const {
  const std::vector<support::VarId> ids = variable_ids();
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (const support::VarId id : ids) names.emplace_back(support::var_name(id));
  return names;
}

LinSystem LinSystem::eliminated(std::string_view name) const {
  return eliminated(support::intern_var(name));
}

namespace {

/// One memoized projection. `deltas` are the *structural* statistic
/// increments the uncached computation would perform (substitution taken,
/// pairs combined, growth cap applied) — replayed verbatim on every hit so
/// the registered counters are run-count-invariant whether or not the cache
/// is warm (tests/obs/test_determinism.cpp relies on exactly that).
struct FmMemoEntry {
  std::vector<std::uint64_t> key;
  LinSystem result;
  FmStatDeltas deltas;
};

/// Hit/miss tallies live in plain atomics, NOT in the stats registry: a warm
/// cache makes them differ between otherwise-identical runs, which would
/// break the counters-are-deterministic contract the registry promises.
std::atomic<std::uint64_t> g_fm_memo_hits{0};
std::atomic<std::uint64_t> g_fm_memo_misses{0};

/// Canonical encoding of (system, eliminated var): the eliminated id, then
/// each constraint's relation, constant and (id, coef) terms in storage
/// order. Constraint order is part of the key on purpose — it is observable
/// in the projection's constraint order.
std::vector<std::uint64_t> fm_memo_key(const std::vector<Constraint>& cs, support::VarId id) {
  std::vector<std::uint64_t> key;
  key.reserve(2 + cs.size() * 4);
  key.push_back(id);
  key.push_back(cs.size());
  for (const Constraint& c : cs) {
    key.push_back(c.rel == Constraint::Rel::Eq0 ? 1 : 0);
    key.push_back(static_cast<std::uint64_t>(c.expr.constant()));
    key.push_back(c.expr.terms().size());
    for (const Term& t : c.expr.terms()) {
      key.push_back(t.id);
      key.push_back(static_cast<std::uint64_t>(t.coef));
    }
  }
  return key;
}

std::uint64_t fm_memo_hash(const std::vector<std::uint64_t>& key) {
  // splitmix64-style mixing over the words.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t w : key) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    std::uint64_t z = h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

/// Per-thread cache (no locks, race-free under the serve pool by
/// construction). One entry per hash bucket with full-key verification;
/// a colliding key simply overwrites — correctness never depends on
/// retention, only the replayed deltas and byte-equal results do.
constexpr std::size_t kFmMemoMaxEntries = 8192;
thread_local std::unordered_map<std::uint64_t, FmMemoEntry> t_fm_memo;

}  // namespace

std::uint64_t fm_memo_hits() { return g_fm_memo_hits.load(std::memory_order_relaxed); }
std::uint64_t fm_memo_misses() { return g_fm_memo_misses.load(std::memory_order_relaxed); }
void fm_memo_clear() {
  t_fm_memo.clear();
  g_fm_memo_hits.store(0, std::memory_order_relaxed);
  g_fm_memo_misses.store(0, std::memory_order_relaxed);
}

LinSystem LinSystem::eliminated(support::VarId id) const {
  stat_fm_eliminations.bump();
  obs::ScopedLatency fm_latency(hist_fm_eliminate);

  std::vector<std::uint64_t> key = fm_memo_key(constraints_, id);
  const std::uint64_t h = fm_memo_hash(key);
  if (const auto it = t_fm_memo.find(h); it != t_fm_memo.end() && it->second.key == key) {
    const FmMemoEntry& e = it->second;
    // Replay the structural deltas so counters match the uncached run.
    stat_fm_substitutions.bump(e.deltas.substitutions);
    stat_fm_pairs.bump(e.deltas.pairs);
    stat_fm_capped.bump(e.deltas.capped);
    g_fm_memo_hits.fetch_add(1, std::memory_order_relaxed);
    return e.result;
  }
  g_fm_memo_misses.fetch_add(1, std::memory_order_relaxed);

  FmMemoEntry entry;
  LinSystem out = eliminated_uncached(id, entry.deltas);
  stat_fm_substitutions.bump(entry.deltas.substitutions);
  stat_fm_pairs.bump(entry.deltas.pairs);
  stat_fm_capped.bump(entry.deltas.capped);
  if (t_fm_memo.size() >= kFmMemoMaxEntries) t_fm_memo.clear();
  entry.key = std::move(key);
  entry.result = out;
  t_fm_memo[h] = std::move(entry);
  return out;
}

LinSystem LinSystem::eliminated_uncached(support::VarId id, FmStatDeltas& deltas) const {
  // If an equality has coefficient +/-1 on the variable, substitute — exact
  // and avoids the quadratic FM blowup.
  for (const Constraint& c : constraints_) {
    if (c.rel != Constraint::Rel::Eq0) continue;
    const std::int64_t k = c.expr.coef(id);
    if (k != 1 && k != -1) continue;
    // k*name + rest == 0  =>  name == -rest/k == -k*rest (k is +/-1).
    LinExpr rest = c.expr - LinExpr::var(id, k);
    const LinExpr value = rest * -k;
    LinSystem out;
    for (const Constraint& other : constraints_) {
      if (&other == &c) continue;
      Constraint subst{other.expr.substituted(id, value), other.rel};
      out.add(std::move(subst));
    }
    out.simplify();
    deltas.substitutions = 1;
    return out;
  }

  std::vector<LinExpr> uppers;  // a > 0 : a*x + r <= 0
  std::vector<LinExpr> lowers;  // a < 0 : a*x + r <= 0
  LinSystem out;
  for (const Constraint& c : constraints_) {
    const std::int64_t a = c.expr.coef(id);
    if (a == 0) {
      out.add(c);
      continue;
    }
    if (c.rel == Constraint::Rel::Eq0) {
      // Expand equality into <= pair.
      if (a > 0) {
        uppers.push_back(c.expr);
        lowers.push_back(-c.expr);
      } else {
        lowers.push_back(c.expr);
        uppers.push_back(-c.expr);
      }
      continue;
    }
    (a > 0 ? uppers : lowers).push_back(c.expr);
  }

  // Combine each (upper, lower) pair: e1 = a*x + r1 (a>0), e2 = b*x + r2
  // (b<0). Then (-b)*e1 + a*e2 eliminates x: a*r2 - b*r1 <= 0.
  deltas.pairs = uppers.size() * lowers.size();
  for (const LinExpr& e1 : uppers) {
    const std::int64_t a = e1.coef(id);
    for (const LinExpr& e2 : lowers) {
      const std::int64_t b = e2.coef(id);
      const std::int64_t g = std::gcd(a, -b);
      LinExpr combined = e1 * ((-b) / g) + e2 * (a / g);
      out.add(Constraint{std::move(combined), Constraint::Rel::Le0});
    }
  }
  out.simplify();
  // Sound growth cap (see kMaxConstraints): dropping constraints can only
  // make the system easier to satisfy, never refute a satisfiable one.
  if (out.constraints_.size() > kMaxConstraints) {
    out.constraints_.resize(kMaxConstraints);
    deltas.capped = 1;
  }
  return out;
}

bool LinSystem::feasible() const {
  stat_feasibility.bump();
  LinSystem cur = *this;
  // Eliminate variables one at a time; order by fewest occurrences to keep
  // the intermediate systems small (greedy min-fill heuristic). Ties break
  // by name order (variable_ids()), exactly as the map era did.
  while (true) {
    const auto vars = cur.variable_ids();
    if (vars.empty()) break;
    support::VarId best = vars.front();
    std::size_t best_count = static_cast<std::size_t>(-1);
    for (const support::VarId v : vars) {
      std::size_t count = 0;
      for (const Constraint& c : cur.constraints_) {
        if (c.expr.references(v)) ++count;
      }
      if (count < best_count) {
        best_count = count;
        best = v;
      }
    }
    cur = cur.eliminated(best);
  }
  for (const Constraint& c : cur.constraints_) {
    const std::int64_t v = c.expr.constant();
    if (c.rel == Constraint::Rel::Le0 && v > 0) return false;
    if (c.rel == Constraint::Rel::Eq0 && v != 0) return false;
  }
  return true;
}

LinSystem::ConstBounds LinSystem::const_bounds(std::string_view name) const {
  const support::VarId id = support::intern_var(name);
  LinSystem cur = *this;
  while (true) {
    auto vars = cur.variable_ids();
    std::erase(vars, id);
    if (vars.empty()) break;
    cur = cur.eliminated(vars.front());
  }
  ConstBounds out;
  auto floor_div = [](std::int64_t a, std::int64_t b) {
    // b > 0
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  };
  auto ceil_div = [&floor_div](std::int64_t a, std::int64_t b) { return -floor_div(-a, b); };
  for (const Constraint& c : cur.constraints_) {
    const std::int64_t a = c.expr.coef(id);
    if (a == 0) continue;
    const std::int64_t r = c.expr.constant();
    if (a > 0 || c.rel == Constraint::Rel::Eq0) {
      // a*x + r <= 0 (a>0)  =>  x <= floor(-r/a)
      const std::int64_t coef = a > 0 ? a : -a;
      const std::int64_t rr = a > 0 ? r : -r;
      const std::int64_t ub = floor_div(-rr, coef);
      if (!out.upper || ub < *out.upper) out.upper = ub;
    }
    if (a < 0 || c.rel == Constraint::Rel::Eq0) {
      // a*x + r <= 0 (a<0)  =>  x >= ceil(r/(-a))
      const std::int64_t coef = a < 0 ? -a : a;
      const std::int64_t rr = a < 0 ? r : -r;
      const std::int64_t lb = ceil_div(rr, coef);
      if (!out.lower || lb > *out.lower) out.lower = lb;
    }
  }
  return out;
}

void LinSystem::simplify() {
  // Normalize by the gcd of all coefficients (constant included for
  // equalities; for <= the constant may shrink only by the variable gcd,
  // which keeps the constraint equivalent over the rationals and no looser
  // over the integers).
  for (Constraint& c : constraints_) {
    std::int64_t g = 0;
    for (const Term& t : c.expr.terms()) {
      g = std::gcd(g, t.coef < 0 ? -t.coef : t.coef);
    }
    if (g > 1 && c.expr.constant() % g == 0) {
      LinExpr scaled(c.expr.constant() / g);
      for (const Term& t : c.expr.terms()) scaled.add_term(t.id, t.coef / g);
      c.expr = std::move(scaled);
    }
  }
  std::vector<Constraint> kept;
  for (Constraint& c : constraints_) {
    if (c.expr.is_constant()) {
      // Trivially true constraints vanish; trivially false ones are kept so
      // feasibility still detects the contradiction.
      const bool trivially_true = c.rel == Constraint::Rel::Le0 ? c.expr.constant() <= 0
                                                                : c.expr.constant() == 0;
      if (trivially_true) continue;
    }
    if (std::find(kept.begin(), kept.end(), c) == kept.end()) kept.push_back(std::move(c));
  }
  constraints_ = std::move(kept);
}

std::string LinSystem::str() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != 0) os << ", ";
    os << constraints_[i].str();
  }
  os << '}';
  return os.str();
}

}  // namespace ara::regions
