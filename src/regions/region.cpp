#include "regions/region.hpp"

#include <numeric>
#include <sstream>

namespace ara::regions {

std::optional<std::int64_t> DimAccess::count() const {
  const auto lo = lb.const_value();
  const auto hi = ub.const_value();
  if (!lo || !hi || stride == 0) return std::nullopt;
  const std::int64_t span = *hi - *lo;
  const std::int64_t s = stride < 0 ? -stride : stride;
  if (stride > 0 && span < 0) return 0;
  if (stride < 0 && span > 0) return 0;
  return (span < 0 ? -span : span) / s + 1;
}

std::string DimAccess::str() const {
  std::ostringstream os;
  os << '[' << lb.str() << ':' << ub.str() << ':' << stride << ']';
  return os.str();
}

bool Region::all_const() const {
  for (const DimAccess& d : dims_) {
    if (!d.const_bounds()) return false;
  }
  return true;
}

bool Region::any_messy() const {
  for (const DimAccess& d : dims_) {
    if (!d.lb.known() || !d.ub.known()) return true;
  }
  return false;
}

std::optional<std::int64_t> Region::element_count() const {
  std::int64_t total = 1;
  for (const DimAccess& d : dims_) {
    const auto n = d.count();
    if (!n) return std::nullopt;
    total *= *n;
  }
  return total;
}

bool Region::contains_point(const std::vector<std::int64_t>& point) const {
  if (point.size() != dims_.size()) return false;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const auto lo = dims_[i].lb.const_value();
    const auto hi = dims_[i].ub.const_value();
    if (!lo || !hi) return false;
    const std::int64_t x = point[i];
    const std::int64_t s = dims_[i].stride;
    if (s >= 0) {
      if (x < *lo || x > *hi) return false;
      if (s > 1 && (x - *lo) % s != 0) return false;
    } else {
      if (x > *lo || x < *hi) return false;
      if ((*lo - x) % (-s) != 0) return false;
    }
  }
  return true;
}

namespace {

/// Normalized [min, max] interval of a constant DimAccess (handles negative
/// strides where lb > ub).
std::optional<std::pair<std::int64_t, std::int64_t>> interval(const DimAccess& d) {
  const auto lo = d.lb.const_value();
  const auto hi = d.ub.const_value();
  if (!lo || !hi) return std::nullopt;
  return std::pair{std::min(*lo, *hi), std::max(*lo, *hi)};
}

}  // namespace

bool Region::certainly_disjoint(const Region& a, const Region& b) {
  if (a.rank() != b.rank()) return false;  // incomparable: be conservative
  for (std::size_t i = 0; i < a.rank(); ++i) {
    const auto ia = interval(a.dim(i));
    const auto ib = interval(b.dim(i));
    if (!ia || !ib) continue;  // unknown bounds: cannot conclude from this dim
    if (ia->second < ib->first || ib->second < ia->first) return true;
    // Same interval but incompatible stride lattices, e.g. [0:10:2] vs
    // [1:11:2]: disjoint iff the residues never coincide.
    const DimAccess& da = a.dim(i);
    const DimAccess& db = b.dim(i);
    if (da.stride > 1 && db.stride > 1) {
      const std::int64_t g = std::gcd(da.stride, db.stride);
      const std::int64_t ra = *da.lb.const_value() % g;
      const std::int64_t rb = *db.lb.const_value() % g;
      if (((ra - rb) % g + g) % g != 0) return true;
    }
  }
  return false;
}

std::optional<Region> Region::hull(const Region& a, const Region& b) {
  if (a.rank() != b.rank() || !a.all_const() || !b.all_const()) return std::nullopt;
  Region out;
  for (std::size_t i = 0; i < a.rank(); ++i) {
    const auto ia = interval(a.dim(i));
    const auto ib = interval(b.dim(i));
    DimAccess d;
    d.lb = Bound::constant(std::min(ia->first, ib->first));
    d.ub = Bound::constant(std::max(ia->second, ib->second));
    const std::int64_t sa = std::abs(a.dim(i).stride);
    const std::int64_t sb = std::abs(b.dim(i).stride);
    d.stride = std::gcd(sa == 0 ? 1 : sa, sb == 0 ? 1 : sb);
    // If the two pieces' phases differ, fall back to stride 1 so the hull
    // stays an over-approximation.
    const std::int64_t la = std::min(*a.dim(i).lb.const_value(), *a.dim(i).ub.const_value());
    const std::int64_t lo_b = std::min(*b.dim(i).lb.const_value(), *b.dim(i).ub.const_value());
    if (d.stride > 1 && ((la - lo_b) % d.stride + d.stride) % d.stride != 0) d.stride = 1;
    out.push_dim(d);
  }
  return out;
}

std::string Region::str() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i].lb.str() << ':' << dims_[i].ub.str() << ':' << dims_[i].stride;
  }
  os << ')';
  return os.str();
}

}  // namespace ara::regions
