// Affine (linear + constant) integer expressions over named variables.
// Subscript expressions, loop bounds and region bounds are all LinExprs; the
// Regions method (§III) "groups array elements into a region using linear
// constraints determined by the subscripts of arrays".
//
// Representation: terms are (VarId, coefficient) pairs in a small-size-
// optimized vector, sorted ascending by interned VarId. Most subscripts have
// <= 4 terms, so the inline buffer makes construction and arithmetic
// allocation-free on the hot Fourier–Motzkin path. VarId order is a process-
// local accident of intern order — every observable rendering (str(), the
// summary serializer, elimination tie-breaking) goes through named_terms() /
// name-sorted variable lists, which reproduce the lexicographic order the old
// std::map<std::string,...> representation exposed, keeping all emitted bytes
// identical. See docs/regions-internals.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/intern.hpp"

namespace ara::regions {

/// One linear term: coef * var(id). Kept sorted by id inside LinExpr; coef is
/// never zero for a stored term.
struct Term {
  support::VarId id;
  std::int64_t coef;
  friend bool operator==(const Term&, const Term&) = default;
};

/// Sorted small-vector of Terms: inline storage for kInlineCap terms, heap
/// spill beyond. Only the operations LinExpr needs — not a general container.
class TermVec {
 public:
  TermVec() = default;
  TermVec(const TermVec& other) { assign(other.data(), other.size_); }
  TermVec(TermVec&& other) noexcept { steal(other); }
  TermVec& operator=(const TermVec& other) {
    if (this != &other) assign(other.data(), other.size_);
    return *this;
  }
  TermVec& operator=(TermVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~TermVec() { release(); }

  [[nodiscard]] const Term* begin() const { return data(); }
  [[nodiscard]] const Term* end() const { return data() + size_; }
  [[nodiscard]] Term* begin() { return data(); }
  [[nodiscard]] Term* end() { return data() + size_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() { size_ = 0; }

  /// Index of `id`, or size() when absent. Linear scan: the vectors are tiny
  /// and sorted, so this beats binary search and any hashing.
  [[nodiscard]] std::size_t find(support::VarId id) const {
    const Term* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (d[i].id >= id) return d[i].id == id ? i : size_;
    }
    return size_;
  }

  /// Adds `coef` to the term for `id`, inserting or erasing to keep the
  /// sorted-by-id, no-zero-coef invariant.
  void accumulate(support::VarId id, std::int64_t coef) {
    if (coef == 0) return;
    Term* d = data();
    std::size_t pos = 0;
    while (pos < size_ && d[pos].id < id) ++pos;
    if (pos < size_ && d[pos].id == id) {
      d[pos].coef += coef;
      if (d[pos].coef == 0) erase_at(pos);
      return;
    }
    insert_at(pos, Term{id, coef});
  }

  friend bool operator==(const TermVec& a, const TermVec& b) {
    if (a.size_ != b.size_) return false;
    const Term* da = a.data();
    const Term* db = b.data();
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(da[i] == db[i])) return false;
    }
    return true;
  }

  static constexpr std::size_t kInlineCap = 4;

 private:
  [[nodiscard]] const Term* data() const { return heap_ ? heap_ : inline_; }
  [[nodiscard]] Term* data() { return heap_ ? heap_ : inline_; }

  void assign(const Term* src, std::uint32_t n) {
    if (n > cap_) grow(n);
    Term* d = data();
    for (std::uint32_t i = 0; i < n; ++i) d[i] = src[i];
    size_ = n;
  }

  void steal(TermVec& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      other.heap_ = nullptr;
      other.cap_ = kInlineCap;
    } else {
      heap_ = nullptr;
      cap_ = kInlineCap;
      for (std::uint32_t i = 0; i < other.size_; ++i) inline_[i] = other.inline_[i];
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void release() {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = kInlineCap;
    size_ = 0;
  }

  void grow(std::uint32_t need);
  void insert_at(std::size_t pos, Term t);
  void erase_at(std::size_t pos) {
    Term* d = data();
    for (std::size_t i = pos + 1; i < size_; ++i) d[i - 1] = d[i];
    --size_;
  }

  Term inline_[kInlineCap] = {};
  Term* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineCap;
};

class LinExpr {
 public:
  LinExpr() = default;
  explicit LinExpr(std::int64_t c) : c0_(c) {}

  /// coef * name
  [[nodiscard]] static LinExpr var(std::string_view name, std::int64_t coef = 1);
  /// coef * var(id) — the allocation-free entry for already-interned ids.
  [[nodiscard]] static LinExpr var(support::VarId id, std::int64_t coef = 1);

  [[nodiscard]] std::int64_t constant() const { return c0_; }

  /// The terms in VarId order (an internal, process-local order). Use
  /// named_terms() whenever the iteration order is observable.
  [[nodiscard]] std::span<const Term> terms() const { return {terms_.begin(), terms_.size()}; }

  /// (name, coef) pairs sorted lexicographically by name — the order the old
  /// map-based representation iterated in, and the one serialization,
  /// printing and substitution sweeps must keep. The views point into the
  /// intern table (stable for the process lifetime).
  [[nodiscard]] std::vector<std::pair<std::string_view, std::int64_t>> named_terms() const;

  [[nodiscard]] bool is_constant() const { return terms_.empty(); }
  [[nodiscard]] bool is_zero() const { return is_constant() && c0_ == 0; }

  /// Coefficient of `name` (0 if absent).
  [[nodiscard]] std::int64_t coef(std::string_view name) const;
  [[nodiscard]] std::int64_t coef(support::VarId id) const {
    const std::size_t pos = terms_.find(id);
    return pos == terms_.size() ? 0 : terms_.begin()[pos].coef;
  }
  [[nodiscard]] bool references(std::string_view name) const { return coef(name) != 0; }
  [[nodiscard]] bool references(support::VarId id) const { return coef(id) != 0; }

  /// Accumulates coef * var(id) into this expression.
  void add_term(support::VarId id, std::int64_t coef) { terms_.accumulate(id, coef); }

  /// True when every variable term satisfies `pred(name)`.
  template <typename Pred>
  [[nodiscard]] bool vars_all(Pred&& pred) const {
    for (const Term& t : terms_) {
      if (!pred(support::var_name(t.id))) return false;
    }
    return true;
  }

  LinExpr& operator+=(const LinExpr& rhs);
  LinExpr& operator-=(const LinExpr& rhs);
  LinExpr& operator*=(std::int64_t k);

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(LinExpr a, std::int64_t k) { return a *= k; }
  friend LinExpr operator*(std::int64_t k, LinExpr a) { return a *= k; }
  friend LinExpr operator-(LinExpr a) { return a *= -1; }

  // Terms are canonical (sorted, no zero coefs), so memberwise equality is
  // exact structural equality, same as the old map representation.
  friend bool operator==(const LinExpr&, const LinExpr&) = default;

  /// Replaces `name` with `repl` (which may itself be symbolic).
  [[nodiscard]] LinExpr substituted(std::string_view name, const LinExpr& repl) const;
  [[nodiscard]] LinExpr substituted(support::VarId id, const LinExpr& repl) const;

  /// Evaluates under an environment; nullopt if a variable is unbound.
  [[nodiscard]] std::optional<std::int64_t> evaluate(
      const std::map<std::string, std::int64_t>& env) const;

  /// "2*i + j - 1"-style rendering; a pure constant prints its value.
  /// Terms print in name order (byte-compatible with the map era).
  [[nodiscard]] std::string str() const;

 private:
  std::int64_t c0_ = 0;
  TermVec terms_;
};

}  // namespace ara::regions
