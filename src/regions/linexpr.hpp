// Affine (linear + constant) integer expressions over named variables.
// Subscript expressions, loop bounds and region bounds are all LinExprs; the
// Regions method (§III) "groups array elements into a region using linear
// constraints determined by the subscripts of arrays".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ara::regions {

class LinExpr {
 public:
  LinExpr() = default;
  explicit LinExpr(std::int64_t c) : c0_(c) {}

  /// coef * name
  [[nodiscard]] static LinExpr var(std::string name, std::int64_t coef = 1);

  [[nodiscard]] std::int64_t constant() const { return c0_; }
  [[nodiscard]] const std::map<std::string, std::int64_t>& terms() const { return terms_; }

  [[nodiscard]] bool is_constant() const { return terms_.empty(); }
  [[nodiscard]] bool is_zero() const { return is_constant() && c0_ == 0; }

  /// Coefficient of `name` (0 if absent).
  [[nodiscard]] std::int64_t coef(std::string_view name) const;
  [[nodiscard]] bool references(std::string_view name) const { return coef(name) != 0; }

  /// True when every variable term satisfies `pred(name)`.
  template <typename Pred>
  [[nodiscard]] bool vars_all(Pred&& pred) const {
    for (const auto& [name, c] : terms_) {
      if (!pred(name)) return false;
    }
    return true;
  }

  LinExpr& operator+=(const LinExpr& rhs);
  LinExpr& operator-=(const LinExpr& rhs);
  LinExpr& operator*=(std::int64_t k);

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(LinExpr a, std::int64_t k) { return a *= k; }
  friend LinExpr operator*(std::int64_t k, LinExpr a) { return a *= k; }
  friend LinExpr operator-(LinExpr a) { return a *= -1; }

  friend bool operator==(const LinExpr&, const LinExpr&) = default;

  /// Replaces `name` with `repl` (which may itself be symbolic).
  [[nodiscard]] LinExpr substituted(std::string_view name, const LinExpr& repl) const;

  /// Evaluates under an environment; nullopt if a variable is unbound.
  [[nodiscard]] std::optional<std::int64_t> evaluate(
      const std::map<std::string, std::int64_t>& env) const;

  /// "2*i + j - 1"-style rendering; a pure constant prints its value.
  [[nodiscard]] std::string str() const;

 private:
  void prune(const std::string& name);

  std::int64_t c0_ = 0;
  std::map<std::string, std::int64_t> terms_;  // name -> nonzero coefficient
};

}  // namespace ara::regions
