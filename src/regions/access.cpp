#include "regions/access.hpp"

namespace ara::regions {

std::optional<AccessMode> access_mode_from_string(std::string_view s) {
  for (AccessMode m : kAllAccessModes) {
    if (s == to_string(m)) return m;
  }
  return std::nullopt;
}

}  // namespace ara::regions
