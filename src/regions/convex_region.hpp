// Convex regions in the sense of Triolet/Creusillet: the set of accessed
// index vectors expressed as a linear-constraint system over one variable per
// array dimension (plus free symbolic parameters such as formal scalars).
// Comparing regions — the disjointness test behind the Fig 1 "P1 and P2 can
// safely run in parallel" conclusion — reduces to Fourier–Motzkin
// feasibility. Strides are not expressible convexly; the triplet form
// (Region) carries them, and conversions here are over-approximations in the
// stride component only.
#pragma once

#include <cstddef>
#include <string>

#include "regions/linsys.hpp"
#include "regions/region.hpp"

namespace ara::regions {

class ConvexRegion {
 public:
  ConvexRegion() = default;
  ConvexRegion(std::size_t rank, LinSystem sys) : rank_(rank), sys_(std::move(sys)) {}

  /// Canonical name of the i-th dimension variable inside the system.
  [[nodiscard]] static std::string dim_var(std::size_t i) { return "$" + std::to_string(i); }
  [[nodiscard]] static bool is_dim_var(std::string_view name) {
    return !name.empty() && name.front() == '$';
  }

  /// Builds the convex form of a triplet region. Known bounds become
  /// lb <= $i <= ub constraints; MESSY/UNPROJECTED dimensions stay
  /// unconstrained (a sound over-approximation). Strides are dropped.
  [[nodiscard]] static ConvexRegion from_region(const Region& r);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] const LinSystem& system() const { return sys_; }

  /// Adds a constraint relating dimension variables and/or parameters.
  void add(Constraint c) { sys_.add(std::move(c)); }

  [[nodiscard]] ConvexRegion intersect(const ConvexRegion& other) const;

  /// Rational emptiness via FM. empty() == true is a proof of emptiness.
  [[nodiscard]] bool empty() const { return !sys_.feasible(); }

  /// True only when the intersection is provably empty — the sound test for
  /// "these two procedures' accesses cannot touch the same element".
  [[nodiscard]] static bool certainly_disjoint(const ConvexRegion& a, const ConvexRegion& b);

  /// Projects each dimension variable back to a triplet. Constant bounds are
  /// recovered through FM; affine parametric bounds are read off
  /// unit-coefficient constraints; dimensions with neither become
  /// UNPROJECTED. All strides are 1 (lost by the convex form).
  [[nodiscard]] Region to_region() const;

  [[nodiscard]] std::string str() const { return sys_.str(); }

 private:
  std::size_t rank_ = 0;
  LinSystem sys_;
};

}  // namespace ara::regions
