// Systems of linear constraints and Fourier–Motzkin elimination. The paper's
// Regions method "expresses the set of array accesses as a convex region in a
// geometrical space" and needs a "Fourier-Motzkin linear system solver, which
// has worst case exponential time, to compare Regions" (§III). We implement
// FM over the rationals (scaled to integers), which is exact for rational
// feasibility and therefore a sound *conservative* disjointness test for
// integer index spaces: infeasible => certainly disjoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "regions/linexpr.hpp"

namespace ara::regions {

/// One constraint: expr <= 0 or expr == 0.
struct Constraint {
  LinExpr expr;
  enum class Rel : std::uint8_t { Le0, Eq0 } rel = Rel::Le0;

  [[nodiscard]] std::string str() const;
  friend bool operator==(const Constraint&, const Constraint&) = default;
};

/// Structural statistic increments of one FM elimination (substitution
/// taken, upper/lower pairs combined, growth cap applied). Captured by the
/// uncached computation and replayed on every memo hit so the registered
/// counters stay run-count-invariant (see docs/regions-internals.md).
struct FmStatDeltas {
  std::uint64_t substitutions = 0;
  std::uint64_t pairs = 0;
  std::uint64_t capped = 0;
};

/// Projection memo-cache introspection. Hit/miss tallies are process-wide
/// plain atomics — deliberately NOT stats-registry counters, because cache
/// warmth varies between otherwise-identical runs. The cache itself is
/// per-thread; fm_memo_clear() empties the calling thread's cache and
/// zeroes the tallies.
[[nodiscard]] std::uint64_t fm_memo_hits();
[[nodiscard]] std::uint64_t fm_memo_misses();
void fm_memo_clear();

/// a <= b
[[nodiscard]] Constraint make_le(const LinExpr& a, const LinExpr& b);
/// a >= b
[[nodiscard]] Constraint make_ge(const LinExpr& a, const LinExpr& b);
/// a == b
[[nodiscard]] Constraint make_eq(const LinExpr& a, const LinExpr& b);

class LinSystem {
 public:
  LinSystem() = default;
  explicit LinSystem(std::vector<Constraint> cs) : constraints_(std::move(cs)) {}

  void add(Constraint c) { constraints_.push_back(std::move(c)); }
  void add_all(const LinSystem& other);

  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }
  [[nodiscard]] bool empty() const { return constraints_.empty(); }

  /// All variables referenced by any constraint, sorted by name.
  [[nodiscard]] std::vector<std::string> variables() const;

  /// Same set as ids, sorted by *name* (not id) — the order every
  /// elimination-sequence decision uses, so results match the map era.
  [[nodiscard]] std::vector<support::VarId> variable_ids() const;

  /// Fourier–Motzkin elimination of `name`: returns the projection of this
  /// system onto the remaining variables. Equalities with the variable are
  /// expanded into inequality pairs first (or substituted when the
  /// coefficient is +/-1, which is lossless and cheaper).
  [[nodiscard]] LinSystem eliminated(std::string_view name) const;
  [[nodiscard]] LinSystem eliminated(support::VarId id) const;

  /// Rational feasibility via repeated FM elimination. False means the
  /// constraint set is certainly empty.
  [[nodiscard]] bool feasible() const;

  /// Constant bounds of `name` implied by the system (projecting away every
  /// other variable). Either side may be absent (unbounded).
  struct ConstBounds {
    std::optional<std::int64_t> lower;
    std::optional<std::int64_t> upper;
  };
  [[nodiscard]] ConstBounds const_bounds(std::string_view name) const;

  /// Symbolic bounds for `name` readable directly off unit-coefficient
  /// constraints whose other terms all satisfy `is_param` (i.e. they mention
  /// only symbolic parameters, not other dimension/index variables).
  /// Returns {lower, upper} LinExprs when found.
  template <typename Pred>
  [[nodiscard]] std::pair<std::optional<LinExpr>, std::optional<LinExpr>> unit_bounds(
      std::string_view name, Pred&& is_param) const {
    const support::VarId vid = support::intern_var(name);
    std::optional<LinExpr> lo, hi;
    for (const Constraint& c : constraints_) {
      const std::int64_t k = c.expr.coef(vid);
      if (k != 1 && k != -1) continue;
      // expr = k*name + rest; k=1: name <= -rest; k=-1: name >= rest.
      LinExpr rest = c.expr - LinExpr::var(vid, k);
      if (!rest.vars_all(is_param)) continue;
      if (k == 1) {
        LinExpr ub = -rest;
        if (!hi || (ub.is_constant() && hi->is_constant() && ub.constant() < hi->constant())) {
          hi = std::move(ub);
        }
        if (c.rel == Constraint::Rel::Eq0) {
          LinExpr lb = -rest;
          if (!lo || (lb.is_constant() && lo->is_constant() && lb.constant() > lo->constant())) {
            lo = std::move(lb);
          }
        }
      } else {
        LinExpr lb = rest;
        if (!lo || (lb.is_constant() && lo->is_constant() && lb.constant() > lo->constant())) {
          lo = std::move(lb);
        }
        if (c.rel == Constraint::Rel::Eq0) {
          LinExpr ub = rest;
          if (!hi || (ub.is_constant() && hi->is_constant() && ub.constant() < hi->constant())) {
            hi = std::move(ub);
          }
        }
      }
    }
    return {std::move(lo), std::move(hi)};
  }

  /// Drops syntactically duplicated and trivially true constraints, after
  /// normalizing each constraint by the gcd of its coefficients (so scalar
  /// multiples dedupe).
  void simplify();

  /// Growth cap applied after each FM elimination step. Dense systems grow
  /// quadratically per step (the paper's "worst case exponential time"
  /// warning, §III); when the projection exceeds this, excess constraints
  /// are dropped. Dropping constraints only *enlarges* the solution set, so
  /// feasibility stays a sound over-approximation: "infeasible" remains a
  /// proof, which is the direction every client (disjointness, dependence)
  /// relies on.
  static constexpr std::size_t kMaxConstraints = 512;

  [[nodiscard]] std::string str() const;

 private:
  [[nodiscard]] LinSystem eliminated_uncached(support::VarId id, FmStatDeltas& deltas) const;

  std::vector<Constraint> constraints_;
};

}  // namespace ara::regions
