#include "regions/linexpr.hpp"

#include <sstream>

namespace ara::regions {

LinExpr LinExpr::var(std::string name, std::int64_t coef) {
  LinExpr e;
  if (coef != 0) e.terms_.emplace(std::move(name), coef);
  return e;
}

std::int64_t LinExpr::coef(std::string_view name) const {
  const auto it = terms_.find(std::string(name));
  return it == terms_.end() ? 0 : it->second;
}

void LinExpr::prune(const std::string& name) {
  const auto it = terms_.find(name);
  if (it != terms_.end() && it->second == 0) terms_.erase(it);
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
  c0_ += rhs.c0_;
  for (const auto& [name, c] : rhs.terms_) {
    terms_[name] += c;
    prune(name);
  }
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
  c0_ -= rhs.c0_;
  for (const auto& [name, c] : rhs.terms_) {
    terms_[name] -= c;
    prune(name);
  }
  return *this;
}

LinExpr& LinExpr::operator*=(std::int64_t k) {
  if (k == 0) {
    c0_ = 0;
    terms_.clear();
    return *this;
  }
  c0_ *= k;
  for (auto& [name, c] : terms_) c *= k;
  return *this;
}

LinExpr LinExpr::substituted(std::string_view name, const LinExpr& repl) const {
  const std::int64_t k = coef(name);
  if (k == 0) return *this;
  LinExpr out = *this;
  out.terms_.erase(std::string(name));
  out += repl * k;
  return out;
}

std::optional<std::int64_t> LinExpr::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  std::int64_t v = c0_;
  for (const auto& [name, c] : terms_) {
    const auto it = env.find(name);
    if (it == env.end()) return std::nullopt;
    v += c * it->second;
  }
  return v;
}

std::string LinExpr::str() const {
  if (is_constant()) return std::to_string(c0_);
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : terms_) {
    if (first) {
      if (c == -1) {
        os << '-';
      } else if (c != 1) {
        os << c << '*';
      }
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ");
      const std::int64_t a = c < 0 ? -c : c;
      if (a != 1) os << a << '*';
    }
    os << name;
  }
  if (c0_ > 0) {
    os << " + " << c0_;
  } else if (c0_ < 0) {
    os << " - " << -c0_;
  }
  return os.str();
}

}  // namespace ara::regions
