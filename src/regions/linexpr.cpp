#include "regions/linexpr.hpp"

#include <algorithm>
#include <sstream>

namespace ara::regions {

using support::VarId;

void TermVec::grow(std::uint32_t need) {
  std::uint32_t cap = cap_ * 2;
  while (cap < need) cap *= 2;
  Term* fresh = new Term[cap];
  const Term* d = data();
  for (std::uint32_t i = 0; i < size_; ++i) fresh[i] = d[i];
  delete[] heap_;
  heap_ = fresh;
  cap_ = cap;
}

void TermVec::insert_at(std::size_t pos, Term t) {
  if (size_ == cap_) grow(size_ + 1);
  Term* d = data();
  for (std::size_t i = size_; i > pos; --i) d[i] = d[i - 1];
  d[pos] = t;
  ++size_;
}

LinExpr LinExpr::var(std::string_view name, std::int64_t coef) {
  LinExpr e;
  if (coef != 0) e.terms_.accumulate(support::intern_var(name), coef);
  return e;
}

LinExpr LinExpr::var(VarId id, std::int64_t coef) {
  LinExpr e;
  if (coef != 0) e.terms_.accumulate(id, coef);
  return e;
}

std::int64_t LinExpr::coef(std::string_view name) const {
  if (terms_.empty()) return 0;
  return coef(support::intern_var(name));
}

std::vector<std::pair<std::string_view, std::int64_t>> LinExpr::named_terms() const {
  std::vector<std::pair<std::string_view, std::int64_t>> out;
  out.reserve(terms_.size());
  for (const Term& t : terms_) out.emplace_back(support::var_name(t.id), t.coef);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
  c0_ += rhs.c0_;
  for (const Term& t : rhs.terms_) terms_.accumulate(t.id, t.coef);
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
  c0_ -= rhs.c0_;
  for (const Term& t : rhs.terms_) terms_.accumulate(t.id, -t.coef);
  return *this;
}

LinExpr& LinExpr::operator*=(std::int64_t k) {
  if (k == 0) {
    c0_ = 0;
    terms_.clear();
    return *this;
  }
  c0_ *= k;
  for (Term& t : terms_) t.coef *= k;
  return *this;
}

LinExpr LinExpr::substituted(std::string_view name, const LinExpr& repl) const {
  if (terms_.empty()) return *this;
  return substituted(support::intern_var(name), repl);
}

LinExpr LinExpr::substituted(VarId id, const LinExpr& repl) const {
  const std::int64_t k = coef(id);
  if (k == 0) return *this;
  LinExpr out = *this;
  out.terms_.accumulate(id, -k);  // erase the substituted term
  out += repl * k;
  return out;
}

std::optional<std::int64_t> LinExpr::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  std::int64_t v = c0_;
  for (const Term& t : terms_) {
    const auto it = env.find(std::string(support::var_name(t.id)));
    if (it == env.end()) return std::nullopt;
    v += t.coef * it->second;
  }
  return v;
}

std::string LinExpr::str() const {
  if (is_constant()) return std::to_string(c0_);
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : named_terms()) {
    if (first) {
      if (c == -1) {
        os << '-';
      } else if (c != 1) {
        os << c << '*';
      }
      first = false;
    } else {
      os << (c < 0 ? " - " : " + ");
      const std::int64_t a = c < 0 ? -c : c;
      if (a != 1) os << a << '*';
    }
    os << name;
  }
  if (c0_ > 0) {
    os << " + " << c0_;
  } else if (c0_ < 0) {
    os << " - " << -c0_;
  }
  return os.str();
}

}  // namespace ara::regions
