// An array region in triplet notation: per dimension [LB : UB : Stride]
// (§I). Unlike the earlier Dragon version — where "array accesses in loops
// were normalized, which prevents showing the exact stride values" and
// "negative bounds and strides" were lost — bounds here may be negative and
// strides are carried exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "regions/bound.hpp"

namespace ara::regions {

/// One dimension's accessed triplet.
struct DimAccess {
  Bound lb;
  Bound ub;
  std::int64_t stride = 1;

  [[nodiscard]] static DimAccess exact(std::int64_t point) {
    return DimAccess{Bound::constant(point), Bound::constant(point), 1};
  }
  [[nodiscard]] static DimAccess range(std::int64_t lb, std::int64_t ub, std::int64_t stride = 1) {
    return DimAccess{Bound::constant(lb), Bound::constant(ub), stride};
  }

  [[nodiscard]] bool const_bounds() const { return lb.is_const() && ub.is_const(); }

  /// Number of accessed elements for constant bounds; nullopt otherwise.
  [[nodiscard]] std::optional<std::int64_t> count() const;

  /// "[lb:ub:stride]" rendering.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const DimAccess&, const DimAccess&) = default;
};

/// A (rank-n) region: one DimAccess per dimension, in source order.
class Region {
 public:
  Region() = default;
  explicit Region(std::vector<DimAccess> dims) : dims_(std::move(dims)) {}

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  [[nodiscard]] const std::vector<DimAccess>& dims() const { return dims_; }
  [[nodiscard]] const DimAccess& dim(std::size_t i) const { return dims_.at(i); }
  [[nodiscard]] DimAccess& dim(std::size_t i) { return dims_.at(i); }
  void push_dim(DimAccess d) { dims_.push_back(std::move(d)); }

  [[nodiscard]] bool all_const() const;
  [[nodiscard]] bool any_messy() const;

  /// Elements covered (respecting strides) when all bounds are constant.
  [[nodiscard]] std::optional<std::int64_t> element_count() const;

  /// Exact containment test for constant regions (stride-aware).
  [[nodiscard]] bool contains_point(const std::vector<std::int64_t>& point) const;

  /// Conservative disjointness for constant regions: true only when some
  /// dimension's [lb,ub] intervals cannot intersect, or when stride lattices
  /// provably miss each other. (The convex-region test handles the symbolic
  /// case.) False means "may overlap".
  [[nodiscard]] static bool certainly_disjoint(const Region& a, const Region& b);

  /// Smallest constant triplet region containing both (per-dimension hull;
  /// strides combine by gcd — the union of two regions "is approximated
  /// since in some cases it does not form a convex hull", §III). Requires
  /// equal rank and constant bounds; nullopt otherwise.
  [[nodiscard]] static std::optional<Region> hull(const Region& a, const Region& b);

  /// True when the two regions have identical bounds and strides.
  friend bool operator==(const Region&, const Region&) = default;

  /// "(1:100:1, 1:100:1)" rendering, as in the paper's Fig 1 discussion.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<DimAccess> dims_;
};

}  // namespace ara::regions
