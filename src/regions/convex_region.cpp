#include "regions/convex_region.hpp"

#include "obs/provenance.hpp"

namespace ara::regions {

ConvexRegion ConvexRegion::from_region(const Region& r) {
  LinSystem sys;
  for (std::size_t i = 0; i < r.rank(); ++i) {
    const DimAccess& d = r.dim(i);
    const LinExpr v = LinExpr::var(dim_var(i));
    // With a negative stride the written triplet runs downward (lb >= ub);
    // constrain with the normalized interval.
    const bool descending = d.stride < 0;
    if (d.lb.known()) {
      Constraint c = descending ? make_le(v, d.lb.expr) : make_ge(v, d.lb.expr);
      sys.add(std::move(c));
    }
    if (d.ub.known()) {
      Constraint c = descending ? make_ge(v, d.ub.expr) : make_le(v, d.ub.expr);
      sys.add(std::move(c));
    }
  }
  return ConvexRegion(r.rank(), std::move(sys));
}

ConvexRegion ConvexRegion::intersect(const ConvexRegion& other) const {
  ConvexRegion out(*this);
  out.rank_ = std::max(rank_, other.rank_);
  out.sys_.add_all(other.sys_);
  return out;
}

bool ConvexRegion::certainly_disjoint(const ConvexRegion& a, const ConvexRegion& b) {
  if (a.rank() != b.rank()) return false;
  return a.intersect(b).empty();
}

Region ConvexRegion::to_region() const {
  Region out;
  for (std::size_t i = 0; i < rank_; ++i) {
    const std::string v = dim_var(i);
    DimAccess d;
    // Prefer symbolic unit bounds (they keep parametric expressions like m);
    // fall back to FM-derived constant bounds.
    auto [lo, hi] = sys_.unit_bounds(v, [](std::string_view name) { return !is_dim_var(name); });
    const auto cb = sys_.const_bounds(v);
    if (lo) {
      d.lb = Bound::affine(BoundKind::Subscr, *lo);
    } else if (cb.lower) {
      d.lb = Bound::constant(*cb.lower);
    } else {
      d.lb = Bound::unprojected();
    }
    if (hi) {
      d.ub = Bound::affine(BoundKind::Subscr, *hi);
    } else if (cb.upper) {
      d.ub = Bound::constant(*cb.upper);
    } else {
      d.ub = Bound::unprojected();
    }
    d.stride = 1;
    if (!d.lb.known() || !d.ub.known()) {
      obs::prov_record_ambient(obs::CauseKind::FmUnprojected, static_cast<std::int32_t>(i),
                               "Fourier-Motzkin projection left the dimension unbounded");
    }
    out.push_dim(std::move(d));
  }
  return out;
}

}  // namespace ara::regions
