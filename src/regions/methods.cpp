#include "regions/methods.hpp"

#include "obs/stats.hpp"

namespace ara::regions {

ARA_STATISTIC(stat_section_widenings, "regions.section_widenings",
              "Regular-section interval widenings while replaying dynamic accesses");

std::size_t ReferenceList::bytes_used() const {
  std::size_t bytes = 0;
  for (const Set& s : lists_) {
    for (const Point& p : s) bytes += p.size() * sizeof(std::int64_t);
  }
  return bytes;
}

void RegularSection::record(AccessMode mode, const Point& p) {
  std::optional<Region>& sec = sections_[static_cast<std::size_t>(mode)];
  if (!sec) {
    Region r;
    for (std::int64_t x : p) r.push_dim(DimAccess::exact(x));
    sec = std::move(r);
    return;
  }
  // Widen each dimension to cover the new point.
  Region& r = *sec;
  for (std::size_t i = 0; i < r.rank() && i < p.size(); ++i) {
    DimAccess& d = r.dim(i);
    const std::int64_t lo = *d.lb.const_value();
    const std::int64_t hi = *d.ub.const_value();
    const std::int64_t x = p[i];
    if (x >= lo && x <= hi) {
      // Inside the interval: tighten the stride lattice if x is off-lattice.
      if (d.stride > 1 && (x - lo) % d.stride != 0) {
        d.stride = std::gcd(d.stride, (x - lo) % d.stride);
        if (d.stride == 0) d.stride = 1;
      }
      continue;
    }
    stat_section_widenings.bump();
    const std::int64_t dist = x < lo ? lo - x : x - hi;
    std::int64_t stride = d.stride;
    if (lo == hi) {
      // First widening of a degenerate section establishes the stride.
      stride = dist;
    } else {
      stride = std::gcd(stride, dist);
      if (stride == 0) stride = 1;
    }
    d.lb = Bound::constant(std::min(lo, x));
    d.ub = Bound::constant(std::max(hi, x));
    d.stride = stride;
  }
}

bool RegularSection::may_access(AccessMode mode, const Point& p) const {
  const std::optional<Region>& sec = sections_[static_cast<std::size_t>(mode)];
  if (!sec) return false;
  return sec->contains_point(p);
}

std::size_t RegularSection::bytes_used() const {
  std::size_t bytes = 0;
  for (const std::optional<Region>& sec : sections_) {
    if (sec) bytes += sec->rank() * 3 * sizeof(std::int64_t);  // lb, ub, stride per dim
  }
  return bytes;
}

}  // namespace ara::regions
