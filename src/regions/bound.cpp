#include "regions/bound.hpp"

namespace ara::regions {

std::string_view to_string(BoundKind k) {
  switch (k) {
    case BoundKind::Const:
      return "CONST";
    case BoundKind::IVar:
      return "IVAR";
    case BoundKind::LIndex:
      return "LINDEX";
    case BoundKind::Subscr:
      return "SUBSCR";
    case BoundKind::Messy:
      return "MESSY";
    case BoundKind::Unprojected:
      return "UNPROJECTED";
  }
  return "?";
}

std::string Bound::str() const {
  if (!known()) return std::string(to_string(kind));
  return expr.str();
}

}  // namespace ara::regions
