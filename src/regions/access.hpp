// Access modes. The paper groups every array region under one of four modes:
// "Access mode can be one of USE, DEF, FORMAL or PASSED. A statement S is a
// definition of v iff S is an assignment statement with left-hand side v. S
// is a use of v iff during execution of S, right-hand side v is read. FORMAL
// refers to the array as found in the function definition (parameter), while
// PASSED refers to the actual value passed (argument)." (§I)
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ara::regions {

enum class AccessMode : std::uint8_t { Use, Def, Formal, Passed };

[[nodiscard]] constexpr std::string_view to_string(AccessMode m) {
  switch (m) {
    case AccessMode::Use:
      return "USE";
    case AccessMode::Def:
      return "DEF";
    case AccessMode::Formal:
      return "FORMAL";
    case AccessMode::Passed:
      return "PASSED";
  }
  return "?";
}

[[nodiscard]] std::optional<AccessMode> access_mode_from_string(std::string_view s);

inline constexpr AccessMode kAllAccessModes[] = {AccessMode::Use, AccessMode::Def,
                                                 AccessMode::Formal, AccessMode::Passed};

}  // namespace ara::regions
