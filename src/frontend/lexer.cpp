#include "frontend/lexer.hpp"

#include <cctype>

#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "support/string_utils.hpp"

namespace ara::fe {

namespace {

std::string_view kTokNames[] = {
    "eof",  "newline", "identifier", "integer literal", "float literal", "string literal",
    "(",    ")",       "[",          "]",               "{",             "}",
    ",",    ";",       ":",          "::",              "=",             "+",
    "-",    "*",       "/",          "%",               "&",             "==",
    "!=",   "<",       ">",          "<=",              ">=",            "&&",
    "||",   "!",       "+=",         "-=",              "++",            "div",
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

std::string_view tok_name(Tok t) { return kTokNames[static_cast<std::size_t>(t)]; }

Lexer::Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags)
    : sm_(sm), file_(file), diags_(diags), text_(sm.text(file)), lang_(sm.language(file)) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

SourceLoc Lexer::here() const { return SourceLoc{file_, line_, col_}; }

void Lexer::push(std::vector<Token>& out, Tok kind, SourceLoc loc, std::string text) {
  Token t;
  t.kind = kind;
  t.loc = loc;
  t.text = std::move(text);
  out.push_back(std::move(t));
}

ARA_STATISTIC(stat_tokens, "frontend.tokens", "Tokens produced by the lexer");
ARA_STATISTIC(stat_lexed_lines, "frontend.lines_lexed", "Source lines consumed by the lexer");

std::vector<Token> Lexer::tokenize() {
  ARA_SPAN("lex", "frontend");
  std::vector<Token> out;
  while (!at_end()) lex_one(out);
  stat_lexed_lines.bump(line_);
  // Guarantee a trailing Newline before Eof in Fortran mode so the parser can
  // always expect a statement terminator.
  if (lang_ == Language::Fortran && (out.empty() || out.back().kind != Tok::Newline)) {
    push(out, Tok::Newline, here());
  }
  push(out, Tok::Eof, here());
  stat_tokens.bump(out.size());
  return out;
}

void Lexer::lex_one(std::vector<Token>& out) {
  const SourceLoc loc = here();
  const char c = peek();

  if (c == '\n') {
    advance();
    if (lang_ == Language::Fortran) {
      // Continuation: a trailing '&' swallows the newline.
      if (!out.empty() && out.back().kind == Tok::Amp) {
        out.pop_back();
        return;
      }
      if (!out.empty() && out.back().kind != Tok::Newline) push(out, Tok::Newline, loc);
    }
    return;
  }
  if (std::isspace(static_cast<unsigned char>(c))) {
    advance();
    return;
  }
  // Comments.
  if (lang_ == Language::Fortran && c == '!') {
    // A line that is "!$omp ..." or similar is still a comment to us.
    while (!at_end() && peek() != '\n') advance();
    return;
  }
  if (lang_ == Language::C && c == '/' && peek(1) == '/') {
    while (!at_end() && peek() != '\n') advance();
    return;
  }
  if (lang_ == Language::C && c == '/' && peek(1) == '*') {
    advance();
    advance();
    while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
    if (!at_end()) {
      advance();
      advance();
    } else {
      diags_.error(loc, "unterminated block comment");
    }
    return;
  }
  if (lang_ == Language::C && c == '#') {
    // Preprocessor-ish lines (e.g. #pragma) are skipped; directives the tool
    // suggests are inserted by the advisor, not parsed back.
    while (!at_end() && peek() != '\n') advance();
    return;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    lex_number(out);
    return;
  }
  if (ident_start(c)) {
    lex_ident(out);
    return;
  }
  if (c == '"' || (lang_ == Language::Fortran && c == '\'')) {
    advance();
    lex_string(out, c);
    return;
  }
  if (lang_ == Language::Fortran && c == '.') {
    lex_dot_operator(out);
    return;
  }

  advance();
  switch (c) {
    case '(':
      push(out, Tok::LParen, loc);
      return;
    case ')':
      push(out, Tok::RParen, loc);
      return;
    case '[':
      push(out, Tok::LBracket, loc);
      return;
    case ']':
      push(out, Tok::RBracket, loc);
      return;
    case '{':
      push(out, Tok::LBrace, loc);
      return;
    case '}':
      push(out, Tok::RBrace, loc);
      return;
    case ',':
      push(out, Tok::Comma, loc);
      return;
    case ';':
      push(out, Tok::Semicolon, loc);
      return;
    case ':':
      if (peek() == ':') {
        advance();
        push(out, Tok::ColonColon, loc);
      } else {
        push(out, Tok::Colon, loc);
      }
      return;
    case '=':
      if (peek() == '=') {
        advance();
        push(out, Tok::EqEq, loc);
      } else {
        push(out, Tok::Assign, loc);
      }
      return;
    case '+':
      if (peek() == '=') {
        advance();
        push(out, Tok::PlusEq, loc);
      } else if (peek() == '+') {
        advance();
        push(out, Tok::PlusPlus, loc);
      } else {
        push(out, Tok::Plus, loc);
      }
      return;
    case '-':
      if (peek() == '=') {
        advance();
        push(out, Tok::MinusEq, loc);
      } else {
        push(out, Tok::Minus, loc);
      }
      return;
    case '*':
      push(out, Tok::Star, loc);
      return;
    case '/':
      if (lang_ == Language::Fortran && peek() == '=') {
        advance();
        push(out, Tok::NotEq, loc);  // Fortran /=
      } else {
        push(out, Tok::Slash, loc);
      }
      return;
    case '%':
      push(out, Tok::Percent, loc);
      return;
    case '&':
      if (peek() == '&') {
        advance();
        push(out, Tok::AndAnd, loc);
      } else {
        push(out, Tok::Amp, loc);
      }
      return;
    case '|':
      if (peek() == '|') {
        advance();
        push(out, Tok::OrOr, loc);
      } else {
        diags_.error(loc, "unexpected '|'");
      }
      return;
    case '!':
      if (peek() == '=') {
        advance();
        push(out, Tok::NotEq, loc);
      } else {
        push(out, Tok::Not, loc);
      }
      return;
    case '<':
      if (peek() == '=') {
        advance();
        push(out, Tok::Le, loc);
      } else {
        push(out, Tok::Lt, loc);
      }
      return;
    case '>':
      if (peek() == '=') {
        advance();
        push(out, Tok::Ge, loc);
      } else {
        push(out, Tok::Gt, loc);
      }
      return;
    default:
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      return;
  }
}

void Lexer::lex_number(std::vector<Token>& out) {
  const SourceLoc loc = here();
  std::string spelling;
  bool is_float = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) spelling += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    spelling += advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) spelling += advance();
  } else if (peek() == '.' && !ident_start(peek(1)) && peek(1) != '.') {
    // "1." style float, but not "1..and." (Fortran dot-operator follows).
    is_float = true;
    spelling += advance();
  }
  // Exponent: 1e5, 1.5d-3 (Fortran d exponent).
  const char e = peek();
  if (e == 'e' || e == 'E' || ((e == 'd' || e == 'D') && lang_ == Language::Fortran)) {
    const char sign = peek(1);
    const char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
    if (std::isdigit(static_cast<unsigned char>(digit))) {
      is_float = true;
      spelling += 'e';
      advance();
      if (sign == '+' || sign == '-') spelling += advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) spelling += advance();
    }
  }
  Token t;
  t.loc = loc;
  t.text = spelling;
  if (is_float) {
    t.kind = Tok::FloatLit;
    t.float_val = std::stod(spelling);
  } else {
    t.kind = Tok::IntLit;
    t.int_val = std::stoll(spelling);
  }
  out.push_back(std::move(t));
}

void Lexer::lex_ident(std::vector<Token>& out) {
  const SourceLoc loc = here();
  std::string spelling;
  while (ident_char(peek())) spelling += advance();
  push(out, Tok::Ident, loc, std::move(spelling));
}

void Lexer::lex_string(std::vector<Token>& out, char quote) {
  const SourceLoc loc = here();
  std::string value;
  while (!at_end() && peek() != quote && peek() != '\n') value += advance();
  if (at_end() || peek() != quote) {
    diags_.error(loc, "unterminated string literal");
  } else {
    advance();
  }
  push(out, Tok::StringLit, loc, std::move(value));
}

void Lexer::lex_dot_operator(std::vector<Token>& out) {
  const SourceLoc loc = here();
  advance();  // '.'
  std::string word;
  while (ident_char(peek())) word += advance();
  if (peek() == '.') {
    advance();
  } else {
    diags_.error(loc, "malformed .op. operator");
  }
  const std::string lower = to_lower(word);
  Tok kind;
  if (lower == "lt") {
    kind = Tok::Lt;
  } else if (lower == "le") {
    kind = Tok::Le;
  } else if (lower == "gt") {
    kind = Tok::Gt;
  } else if (lower == "ge") {
    kind = Tok::Ge;
  } else if (lower == "eq") {
    kind = Tok::EqEq;
  } else if (lower == "ne") {
    kind = Tok::NotEq;
  } else if (lower == "and") {
    kind = Tok::AndAnd;
  } else if (lower == "or") {
    kind = Tok::OrOr;
  } else if (lower == "not") {
    kind = Tok::Not;
  } else if (lower == "true") {
    Token t;
    t.kind = Tok::IntLit;
    t.int_val = 1;
    t.loc = loc;
    t.text = ".true.";
    out.push_back(std::move(t));
    return;
  } else if (lower == "false") {
    Token t;
    t.kind = Tok::IntLit;
    t.int_val = 0;
    t.loc = loc;
    t.text = ".false.";
    out.push_back(std::move(t));
    return;
  } else {
    diags_.error(loc, "unknown operator ." + word + ".");
    return;
  }
  push(out, kind, loc);
}

}  // namespace ara::fe
