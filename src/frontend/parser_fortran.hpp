// Recursive-descent parser for the Fortran-like input subset: PROGRAM /
// SUBROUTINE / FUNCTION units, typed declarations with dimension bounds
// `A(1:200, 1:200)`, COMMON blocks (globals), DO loops with optional stride,
// block and logical IF, CALL, RETURN. One statement per line; `&` continues.
#pragma once

#include "frontend/parser_base.hpp"

namespace ara::fe {

class FortranParser : private ParserBase {
 public:
  FortranParser(std::vector<Token> tokens, FileId file, DiagnosticEngine& diags)
      : ParserBase(std::move(tokens), diags, Language::Fortran), file_(file) {}

  [[nodiscard]] ModuleAst parse_module();

 private:
  void skip_newlines();
  void expect_stmt_end();

  [[nodiscard]] ProcDecl parse_unit();
  /// Returns true if a declaration was parsed (type decl or COMMON).
  bool parse_decl(ProcDecl& proc);
  void parse_entity_list(ProcDecl& proc, ir::Mtype mtype, const std::vector<DimSpec>* common_dims);
  [[nodiscard]] std::vector<DimSpec> parse_dims();

  [[nodiscard]] StmtPtr parse_stmt();
  [[nodiscard]] StmtPtr parse_do();
  [[nodiscard]] StmtPtr parse_if();
  [[nodiscard]] StmtPtr parse_call();
  [[nodiscard]] StmtPtr parse_assignment();

  /// Parses statements until one of the given (case-insensitive) terminator
  /// keywords is at the cursor; the terminator is left unconsumed.
  [[nodiscard]] std::vector<StmtPtr> parse_body(std::initializer_list<std::string_view> stops);

  FileId file_;
  std::vector<std::string> pending_common_;  // names listed in COMMON blocks
  ModuleAst* module_ = nullptr;
  ProcDecl* current_proc_ = nullptr;  // receives declarations parsed in bodies
};

/// Convenience: lex + parse one Fortran file.
[[nodiscard]] ModuleAst parse_fortran(const SourceManager& sm, FileId file,
                                      DiagnosticEngine& diags);

}  // namespace ara::fe
