// Lowering: resolved AST -> H-WHIRL. Array references become explicit
// OPR_ARRAY nodes in the (row-major, zero-based) form the paper documents:
// Fortran's column-major source dims are reversed into row-major kid order
// and every index expression is adjusted "so that the array index has a zero
// lower bound" (§IV-C). Dragon later undoes both adjustments for display.
#pragma once

#include "frontend/sema.hpp"
#include "ir/program.hpp"
#include "ir/wn_builder.hpp"

namespace ara::fe {

class Lowerer {
 public:
  Lowerer(ir::Program& program, DiagnosticEngine& diags)
      : program_(program), diags_(diags), build_(program.symtab) {}

  /// Lowers one procedure into a FUNC_ENTRY tree and appends it to the
  /// program's procedure list.
  void lower_proc(const ProcScope& scope);

 private:
  [[nodiscard]] ir::WNPtr lower_stmt(const Stmt& stmt, const ProcScope& scope);
  [[nodiscard]] ir::WNPtr lower_block(const std::vector<StmtPtr>& stmts, const ProcScope& scope);
  [[nodiscard]] ir::WNPtr lower_expr(const Expr& expr, const ProcScope& scope);
  [[nodiscard]] ir::WNPtr lower_array_address(const Expr& ref, const ProcScope& scope);
  [[nodiscard]] ir::WNPtr lower_call_arg(const Expr& arg, const ProcScope& scope);
  [[nodiscard]] ir::WNPtr lower_intrinsic(const Expr& call, const ProcScope& scope);

  [[nodiscard]] ir::StIdx resolve(const std::string& name, const ProcScope& scope) const;
  [[nodiscard]] ir::Mtype expr_mtype(const Expr& expr, const ProcScope& scope) const;

  ir::Program& program_;
  DiagnosticEngine& diags_;
  ir::WNBuilder build_;
};

}  // namespace ara::fe
