// Semantic analysis: builds the ST/TY tables from the parsed modules,
// resolves every identifier, unifies globals (C file-scope variables and
// Fortran COMMON members) across compilation units, applies Fortran implicit
// typing as a fallback, and re-classifies the parser's ambiguous Fortran
// `name(args)` nodes into array references, procedure calls or intrinsics.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace ara::fe {

/// Resolved name bindings for one procedure, consumed by lowering.
struct ProcScope {
  ir::StIdx proc_st = ir::kInvalidSt;
  const ProcDecl* decl = nullptr;
  FileId file = kInvalidFileId;
  Language lang = Language::Fortran;
  /// lowercase name -> symbol (formals, locals and referenced globals)
  std::map<std::string, ir::StIdx> names;
  std::vector<ir::StIdx> formals;  // in parameter order
};

/// A reference to a procedure that is not defined in the analyzed modules
/// (separate-compilation mode only). The serve engine's link phase checks
/// these against the whole program's procedure table and diagnoses the ones
/// that never resolve — the per-unit analogue of sema's "call to unknown
/// procedure" error.
struct ExternRef {
  std::string name;  // lowercase
  SourceLoc loc;
};

struct SemaResult {
  std::vector<ProcScope> scopes;  // parallel to the flattened proc list
  std::vector<ExternRef> externs;  // separate-compilation mode only
  /// Lowercase names of globals resolved from the import table (separate-
  /// compilation mode only), in first-reference order. The serve engine
  /// records these in the unit summary so the link phase can bind them to
  /// the sibling unit that really declares them.
  std::vector<std::string> imported_globals;
};

/// One sibling-unit global declaration offered for import during separate
/// compilation: the IR-level shape of a file-scope variable declared in
/// another translation unit (see serve/globals.hpp, which builds the table).
struct ImportDecl {
  std::string name;  // declaring unit's spelling
  ir::Mtype mtype = ir::Mtype::I4;
  bool is_array = false;
  bool row_major = true;  // C declarations are row-major
  std::vector<ir::ArrayDim> dims;
};

/// Lowercase global name -> its canonical (first-declaring unit) shape.
using GlobalImportTable = std::map<std::string, ImportDecl>;

struct SemaOptions {
  /// Separate compilation (one translation unit at a time, as the serve
  /// engine does): a call to a procedure the unit does not define is not an
  /// error; an extern Proc ST is declared on the fly and the reference is
  /// reported in SemaResult::externs for the linker to check. In Fortran,
  /// an unresolved `name(args)` is taken to be an external function call
  /// (whole-program sema can tell undeclared arrays from cross-unit
  /// functions; a single unit cannot).
  bool external_calls = false;
  /// Cross-unit global-declaration import (separate compilation, C units
  /// only): an undeclared identifier that names an entry here is declared as
  /// a Global with the imported shape instead of erroring, mirroring how
  /// whole-program sema would have resolved it against the sibling unit's
  /// file-scope declaration.
  const GlobalImportTable* imports = nullptr;
};

/// True for the supported intrinsic functions (abs, sqrt, max, ...).
[[nodiscard]] bool is_intrinsic(std::string_view name);

class Sema {
 public:
  Sema(ir::Program& program, DiagnosticEngine& diags, SemaOptions opts = {})
      : program_(program), diags_(diags), opts_(opts) {}

  /// Runs over all modules; returns scopes for every procedure. Also
  /// re-writes ambiguous Fortran ArrayRef nodes into CallExpr where the name
  /// resolves to a procedure or intrinsic.
  [[nodiscard]] SemaResult run(std::vector<ModuleAst>& modules);

 private:
  void declare_procedures(const std::vector<ModuleAst>& modules);
  void declare_globals(std::vector<ModuleAst>& modules);
  void analyze_proc(ModuleAst& mod, ProcDecl& proc, SemaResult& out);

  [[nodiscard]] ir::TyIdx make_ty(const VarDecl& decl, Language lang, const ProcScope& scope);
  ir::StIdx implicit_scalar(const std::string& name, Language lang,
                                          ir::StIdx owner, FileId file, SourceLoc loc,
                                          ProcScope& scope);

  void resolve_stmt(Stmt& stmt, ProcScope& scope, Language lang);
  void resolve_expr(Expr& expr, ProcScope& scope, Language lang);

  /// Declares an extern Proc ST for `name` (separate-compilation mode) and
  /// records the reference; returns true when the mode permits it.
  bool extern_call(const std::string& name, SourceLoc loc, FileId file);

  /// Declares a Global ST for lowercase `key` from the import table
  /// (separate-compilation C units only); kInvalidSt when not importable.
  ir::StIdx import_global(const std::string& key, Language lang, SourceLoc loc, FileId file);

  /// Constant-folds a dimension bound expression; nullopt if not constant.
  [[nodiscard]] std::optional<std::int64_t> fold(const Expr* e) const;

  ir::Program& program_;
  DiagnosticEngine& diags_;
  SemaOptions opts_;
  SemaResult* result_ = nullptr;              // set while run() executes
  std::map<std::string, ir::StIdx> procs_;    // lowercase name -> Proc ST
  std::map<std::string, ir::StIdx> globals_;  // lowercase name -> global ST
};

}  // namespace ara::fe
