// Front-end entry point: parse + sema + lowering for every source buffer
// registered in the program's SourceManager, mirroring OpenUH's FE stage
// (Fig 3: sources -> VH WHIRL -> H WHIRL, where IPA operates).
#pragma once

#include <vector>

#include "frontend/sema.hpp"
#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace ara::fe {

struct CompileOptions {
  /// Separate compilation for the serve engine: see SemaOptions.
  bool external_calls = false;
  /// Cross-unit global import table (separate compilation): see SemaOptions.
  const GlobalImportTable* imports = nullptr;
};

/// Compiles all registered sources into program.procedures / program.symtab
/// and assigns the static data layout. Returns false if any error diagnostic
/// was emitted (the program may be partially populated).
bool compile_program(ir::Program& program, DiagnosticEngine& diags);

/// As above; `externs` (when non-null) receives the external procedure
/// references declared on the fly under `opts.external_calls`, and
/// `imported_globals` (when non-null) the lowercase names resolved from
/// `opts.imports`.
bool compile_program(ir::Program& program, DiagnosticEngine& diags, const CompileOptions& opts,
                     std::vector<ExternRef>* externs,
                     std::vector<std::string>* imported_globals = nullptr);

}  // namespace ara::fe
