// Front-end entry point: parse + sema + lowering for every source buffer
// registered in the program's SourceManager, mirroring OpenUH's FE stage
// (Fig 3: sources -> VH WHIRL -> H WHIRL, where IPA operates).
#pragma once

#include "ir/program.hpp"
#include "support/diagnostics.hpp"

namespace ara::fe {

/// Compiles all registered sources into program.procedures / program.symtab
/// and assigns the static data layout. Returns false if any error diagnostic
/// was emitted (the program may be partially populated).
bool compile_program(ir::Program& program, DiagnosticEngine& diags);

}  // namespace ara::fe
