// Shared parser machinery: token cursor, error recovery and the expression
// grammar (precedence climbing), which both language parsers reuse. In
// Fortran mode `name(a, b)` is syntactically ambiguous between an array
// element and a function reference; the parser emits ArrayRef and sema
// re-classifies it as CallExpr when `name` resolves to a procedure or
// intrinsic.
#pragma once

#include <cstdint>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"
#include "support/diagnostics.hpp"
#include "support/limits.hpp"

namespace ara::fe {

class ParserBase {
 protected:
  ParserBase(std::vector<Token> tokens, DiagnosticEngine& diags, Language lang)
      : tokens_(std::move(tokens)), diags_(diags), lang_(lang) {}

  /// RAII recursion guard shared by the expression grammar and the
  /// language parsers' statement recursion. Throws ResourceLimitError past
  /// the active max_nesting_depth — a hostile input (10k nested parens or
  /// braces) must become a structured failure before it overflows the
  /// native stack.
  class NestingGuard {
   public:
    explicit NestingGuard(ParserBase& p) : p_(p) {
      if (++p_.depth_ > support::active_limits().max_nesting_depth) {
        throw support::ResourceLimitError(
            "nesting exceeds the depth cap of " +
            std::to_string(support::active_limits().max_nesting_depth));
      }
    }
    ~NestingGuard() { --p_.depth_; }
    NestingGuard(const NestingGuard&) = delete;
    NestingGuard& operator=(const NestingGuard&) = delete;

   private:
    ParserBase& p_;
  };

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool at(Tok kind) const { return peek().kind == kind; }
  [[nodiscard]] bool at_end() const { return at(Tok::Eof); }
  const Token& advance();
  bool accept(Tok kind);
  /// Consumes `kind` or reports an error (and stays put).
  const Token& expect(Tok kind, std::string_view what);

  /// Case-insensitive keyword tests on identifier tokens.
  [[nodiscard]] bool at_kw(std::string_view kw) const;
  bool accept_kw(std::string_view kw);
  void expect_kw(std::string_view kw);

  // --- expression grammar -------------------------------------------------
  [[nodiscard]] ExprPtr parse_expr() {
    const NestingGuard guard(*this);
    return parse_or();
  }

  DiagnosticEngine& diags() { return diags_; }
  [[nodiscard]] Language lang() const { return lang_; }

 private:
  [[nodiscard]] ExprPtr parse_or();
  [[nodiscard]] ExprPtr parse_and();
  [[nodiscard]] ExprPtr parse_cmp();
  [[nodiscard]] ExprPtr parse_add();
  [[nodiscard]] ExprPtr parse_mul();
  [[nodiscard]] ExprPtr parse_unary();
  [[nodiscard]] ExprPtr parse_primary();
  [[nodiscard]] ExprPtr parse_postfix(ExprPtr base);

  std::vector<Token> tokens_;
  DiagnosticEngine& diags_;
  Language lang_;
  std::size_t cursor_ = 0;
  std::uint32_t depth_ = 0;  // NestingGuard recursion depth
};

}  // namespace ara::fe
