// Token definitions shared by the Fortran-like and C-like lexers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace ara::fe {

enum class Tok : std::uint8_t {
  Eof,
  Newline,    // statement separator (significant in Fortran mode)
  Ident,
  IntLit,
  FloatLit,
  StringLit,
  // punctuation
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Colon,
  ColonColon,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,      // & (Fortran continuation is consumed by the lexer; this is C address-of, unused)
  // comparisons
  EqEq,
  NotEq,
  Lt,
  Gt,
  Le,
  Ge,
  // logical
  AndAnd,
  OrOr,
  Not,
  // compound assignment (C)
  PlusEq,
  MinusEq,
  PlusPlus,
  Div,  // placeholder to keep switch exhaustive; unused
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;       // identifier / literal spelling
  std::int64_t int_val = 0;
  double float_val = 0.0;
  SourceLoc loc;

  [[nodiscard]] bool is(Tok k) const { return kind == k; }
};

[[nodiscard]] std::string_view tok_name(Tok t);

}  // namespace ara::fe
