#include "frontend/sema.hpp"

#include "support/string_utils.hpp"

namespace ara::fe {

namespace {

const std::set<std::string>& intrinsics() {
  static const std::set<std::string> kIntrinsics = {
      "abs",  "sqrt", "exp",  "log",  "sin",  "cos", "tan", "sign",
      "max",  "min",  "mod",  "dble", "real", "int", "nint", "float",
      "this_image", "num_images",
  };
  return kIntrinsics;
}

}  // namespace

bool is_intrinsic(std::string_view name) { return intrinsics().count(to_lower(name)) != 0; }

SemaResult Sema::run(std::vector<ModuleAst>& modules) {
  SemaResult out;
  result_ = &out;
  declare_procedures(modules);
  declare_globals(modules);
  for (ModuleAst& mod : modules) {
    for (ProcDecl& proc : mod.procs) analyze_proc(mod, proc, out);
  }
  result_ = nullptr;
  return out;
}

bool Sema::extern_call(const std::string& name, SourceLoc loc, FileId file) {
  if (!opts_.external_calls) return false;
  const std::string key = to_lower(name);
  if (procs_.count(key) == 0) {
    ir::St st;
    st.name = name;
    st.sclass = ir::StClass::Proc;
    st.storage = ir::StStorage::Global;
    st.ty = program_.symtab.make_scalar_ty(ir::Mtype::Void);
    st.loc = loc;
    st.file = file;
    procs_[key] = program_.symtab.make_st(std::move(st));
  }
  if (result_ != nullptr) result_->externs.push_back(ExternRef{key, loc});
  return true;
}

ir::StIdx Sema::import_global(const std::string& key, Language lang, SourceLoc loc,
                              FileId file) {
  // Scoped v1: C units only. Fortran's implicit-typing fallback already gives
  // undeclared names a meaning, and COMMON declarations travel with the unit.
  if (!opts_.external_calls || opts_.imports == nullptr) return ir::kInvalidSt;
  if (lang != Language::C) return ir::kInvalidSt;
  const auto it = opts_.imports->find(key);
  if (it == opts_.imports->end()) return ir::kInvalidSt;
  const ImportDecl& decl = it->second;
  ir::St st;
  st.name = decl.name.empty() ? key : decl.name;
  st.sclass = ir::StClass::Var;
  st.storage = ir::StStorage::Global;
  st.ty = decl.is_array
              ? program_.symtab.make_array_ty(decl.mtype, std::vector<ir::ArrayDim>(decl.dims),
                                              decl.row_major, /*noncontiguous=*/false,
                                              /*coarray=*/false)
              : program_.symtab.make_scalar_ty(decl.mtype);
  st.loc = loc;
  st.file = file;
  const ir::StIdx idx = program_.symtab.make_st(std::move(st));
  globals_[key] = idx;
  if (result_ != nullptr) result_->imported_globals.push_back(key);
  return idx;
}

void Sema::declare_procedures(const std::vector<ModuleAst>& modules) {
  for (const ModuleAst& mod : modules) {
    for (const ProcDecl& proc : mod.procs) {
      const std::string key = to_lower(proc.name);
      if (procs_.count(key) != 0) {
        diags_.error(proc.loc, "redefinition of procedure '" + proc.name + "'");
        continue;
      }
      ir::St st;
      st.name = proc.name;
      st.sclass = ir::StClass::Proc;
      st.storage = ir::StStorage::Global;
      st.ty = program_.symtab.make_scalar_ty(ir::Mtype::Void);
      st.loc = proc.loc;
      st.file = mod.file;
      procs_[key] = program_.symtab.make_st(std::move(st));
    }
  }
}

std::optional<std::int64_t> Sema::fold(const Expr* e) const {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case ExprKind::IntLit:
      return e->int_val;
    case ExprKind::Unary: {
      const auto v = fold(e->args[0].get());
      if (!v) return std::nullopt;
      return e->name == "-" ? std::optional(-*v) : std::nullopt;
    }
    case ExprKind::Binary: {
      const auto a = fold(e->args[0].get());
      const auto b = fold(e->args[1].get());
      if (!a || !b) return std::nullopt;
      switch (e->op) {
        case BinOp::Add:
          return *a + *b;
        case BinOp::Sub:
          return *a - *b;
        case BinOp::Mul:
          return *a * *b;
        case BinOp::Div:
          return *b == 0 ? std::nullopt : std::optional(*a / *b);
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

ir::TyIdx Sema::make_ty(const VarDecl& decl, Language lang, const ProcScope& /*scope*/) {
  if (decl.dims.empty()) return program_.symtab.make_scalar_ty(decl.mtype);
  std::vector<ir::ArrayDim> dims;
  for (const DimSpec& d : decl.dims) {
    ir::ArrayDim out;
    // Lower bound: explicit, or the language default (Fortran 1, C 0).
    if (d.lb) {
      if (const auto v = fold(d.lb.get())) {
        out.lb = *v;
      } else if (d.lb->kind == ExprKind::VarRef) {
        out.lb_sym = to_lower(d.lb->name);
      }
    } else {
      out.lb = lang == Language::Fortran ? 1 : 0;
    }
    // Upper bound: may be absent (assumed-size) or symbolic.
    if (d.ub) {
      if (const auto v = fold(d.ub.get())) {
        out.ub = *v;
      } else if (d.ub->kind == ExprKind::VarRef) {
        out.ub_sym = to_lower(d.ub->name);
      } else if (lang == Language::C && d.ub->kind == ExprKind::Binary &&
                 d.ub->op == BinOp::Sub && d.ub->args[0]->kind == ExprKind::VarRef) {
        // C extents were rewritten to N-1 by the parser; a symbolic N shows
        // up as (name - 1), which we cannot carry exactly — leave unknown.
      }
    }
    dims.push_back(std::move(out));
  }
  return program_.symtab.make_array_ty(decl.mtype, std::move(dims), lang == Language::C,
                                       /*noncontiguous=*/false, decl.is_coarray);
}

ir::StIdx Sema::implicit_scalar(const std::string& name, Language lang, ir::StIdx owner,
                                FileId file, SourceLoc loc, ProcScope& scope) {
  if (lang == Language::C) {
    diags_.error(loc, "use of undeclared identifier '" + name + "'");
  } else {
    diags_.note(loc, "implicit declaration of '" + name + "' (Fortran implicit typing)");
  }
  // Fortran implicit rule: i..n are INTEGER, the rest REAL.
  const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(name[0])));
  const ir::Mtype mtype =
      (lang == Language::C || (c >= 'i' && c <= 'n')) ? ir::Mtype::I4 : ir::Mtype::F4;
  ir::St st;
  st.name = name;
  st.sclass = ir::StClass::Var;
  st.storage = ir::StStorage::Local;
  st.ty = program_.symtab.make_scalar_ty(mtype);
  st.owner_proc = owner;
  st.loc = loc;
  st.file = file;
  const ir::StIdx idx = program_.symtab.make_st(std::move(st));
  scope.names[to_lower(name)] = idx;
  return idx;
}

void Sema::declare_globals(std::vector<ModuleAst>& modules) {
  // C file-scope variables and Fortran COMMON members unify by name across
  // all compilation units — the paper's "@" scope lists them program-wide.
  ProcScope dummy;
  auto declare = [&](const VarDecl& decl, Language lang, FileId file) {
    const std::string key = to_lower(decl.name);
    const auto it = globals_.find(key);
    if (it != globals_.end()) {
      const ir::Ty& prev = program_.symtab.ty(program_.symtab.st(it->second).ty);
      const std::size_t new_rank = decl.dims.size();
      if (prev.is_array() != (new_rank > 0) || (prev.is_array() && prev.rank() != new_rank)) {
        diags_.warning(decl.loc,
                       "global '" + decl.name + "' redeclared with a different shape");
      }
      return;
    }
    ir::St st;
    st.name = decl.name;
    st.sclass = ir::StClass::Var;
    st.storage = ir::StStorage::Global;
    st.ty = make_ty(decl, lang, dummy);
    st.loc = decl.loc;
    st.file = file;
    globals_[key] = program_.symtab.make_st(std::move(st));
  };
  for (ModuleAst& mod : modules) {
    for (const VarDecl& g : mod.globals) declare(g, mod.lang, mod.file);
    for (const ProcDecl& proc : mod.procs) {
      for (const VarDecl& d : proc.decls) {
        if (d.is_global) declare(d, mod.lang, mod.file);
      }
    }
  }
}

void Sema::analyze_proc(ModuleAst& mod, ProcDecl& proc, SemaResult& out) {
  ProcScope scope;
  scope.decl = &proc;
  scope.file = mod.file;
  scope.lang = mod.lang;
  scope.proc_st = procs_.at(to_lower(proc.name));

  // Formals first, in parameter order.
  std::uint32_t pos = 0;
  for (const std::string& param : proc.params) {
    ++pos;
    const VarDecl* decl = nullptr;
    for (const VarDecl& d : proc.decls) {
      if (iequals(d.name, param)) {
        decl = &d;
        break;
      }
    }
    ir::St st;
    st.name = param;
    st.sclass = ir::StClass::Formal;
    st.storage = ir::StStorage::Formal;
    st.owner_proc = scope.proc_st;
    st.formal_pos = pos;
    st.file = mod.file;
    if (decl != nullptr) {
      st.ty = make_ty(*decl, mod.lang, scope);
      st.loc = decl->loc;
      if (decl->is_global) {
        diags_.error(decl->loc, "formal parameter '" + param + "' cannot be in COMMON");
      }
    } else {
      diags_.note(proc.loc, "formal '" + param + "' has no type declaration; using implicit");
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(param[0])));
      const ir::Mtype mtype =
          (mod.lang == Language::C || (c >= 'i' && c <= 'n')) ? ir::Mtype::I4 : ir::Mtype::F4;
      st.ty = program_.symtab.make_scalar_ty(mtype);
      st.loc = proc.loc;
    }
    const ir::StIdx idx = program_.symtab.make_st(std::move(st));
    scope.names[to_lower(param)] = idx;
    scope.formals.push_back(idx);
  }

  // Locals (declarations that are neither formals nor COMMON/global).
  for (const VarDecl& d : proc.decls) {
    const std::string key = to_lower(d.name);
    if (scope.names.count(key) != 0) continue;  // formal already bound
    if (d.is_global) {
      scope.names[key] = globals_.at(key);
      continue;
    }
    ir::St st;
    st.name = d.name;
    st.sclass = ir::StClass::Var;
    st.storage = ir::StStorage::Local;
    st.ty = make_ty(d, mod.lang, scope);
    st.owner_proc = scope.proc_st;
    st.loc = d.loc;
    st.file = mod.file;
    scope.names[key] = program_.symtab.make_st(std::move(st));
  }

  for (StmtPtr& s : proc.body) {
    if (s) resolve_stmt(*s, scope, mod.lang);
  }
  out.scopes.push_back(std::move(scope));
}

void Sema::resolve_stmt(Stmt& stmt, ProcScope& scope, Language lang) {
  switch (stmt.kind) {
    case StmtKind::Assign:
      resolve_expr(*stmt.lhs, scope, lang);
      resolve_expr(*stmt.rhs, scope, lang);
      if (stmt.lhs->kind == ExprKind::CallExpr) {
        diags_.error(stmt.lhs->loc, "cannot assign to a function call");
      }
      break;
    case StmtKind::Do: {
      const std::string key = to_lower(stmt.do_var);
      if (scope.names.count(key) == 0) {
        implicit_scalar(stmt.do_var, lang, scope.proc_st, scope.file, stmt.loc, scope);
      }
      resolve_expr(*stmt.do_init, scope, lang);
      resolve_expr(*stmt.do_limit, scope, lang);
      if (stmt.do_step) resolve_expr(*stmt.do_step, scope, lang);
      for (StmtPtr& s : stmt.body) {
        if (s) resolve_stmt(*s, scope, lang);
      }
      break;
    }
    case StmtKind::If:
      resolve_expr(*stmt.cond, scope, lang);
      for (StmtPtr& s : stmt.body) {
        if (s) resolve_stmt(*s, scope, lang);
      }
      for (StmtPtr& s : stmt.else_body) {
        if (s) resolve_stmt(*s, scope, lang);
      }
      break;
    case StmtKind::CallStmt: {
      if (procs_.count(to_lower(stmt.callee)) == 0 && !is_intrinsic(stmt.callee) &&
          !extern_call(stmt.callee, stmt.loc, scope.file)) {
        diags_.error(stmt.loc, "call to unknown procedure '" + stmt.callee + "'");
      }
      for (ExprPtr& a : stmt.call_args) {
        if (a) resolve_expr(*a, scope, lang);
      }
      break;
    }
    case StmtKind::Return:
      break;
  }
}

void Sema::resolve_expr(Expr& expr, ProcScope& scope, Language lang) {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::StringLit:
      return;
    case ExprKind::Binary:
    case ExprKind::Unary:
      for (ExprPtr& a : expr.args) resolve_expr(*a, scope, lang);
      return;
    case ExprKind::VarRef: {
      const std::string key = to_lower(expr.name);
      if (scope.names.count(key) != 0) return;
      const auto git = globals_.find(key);
      if (git != globals_.end()) {
        scope.names[key] = git->second;
        return;
      }
      if (const ir::StIdx imp = import_global(key, lang, expr.loc, scope.file);
          imp != ir::kInvalidSt) {
        scope.names[key] = imp;
        return;
      }
      implicit_scalar(expr.name, lang, scope.proc_st, scope.file, expr.loc, scope);
      return;
    }
    case ExprKind::ArrayRef: {
      const std::string key = to_lower(expr.name);
      // Resolve the base name: local/global array, procedure or intrinsic.
      ir::StIdx base = ir::kInvalidSt;
      if (const auto it = scope.names.find(key); it != scope.names.end()) {
        base = it->second;
      } else if (const auto git = globals_.find(key); git != globals_.end()) {
        scope.names[key] = git->second;
        base = git->second;
      } else if (const ir::StIdx imp = import_global(key, lang, expr.loc, scope.file);
                 imp != ir::kInvalidSt) {
        scope.names[key] = imp;
        base = imp;
      }
      if (base == ir::kInvalidSt) {
        if (is_intrinsic(expr.name) || procs_.count(key) != 0) {
          expr.kind = ExprKind::CallExpr;  // Fortran name(args) was a call
          for (ExprPtr& a : expr.args) resolve_expr(*a, scope, lang);
          return;
        }
        if (lang == Language::Fortran && extern_call(expr.name, expr.loc, scope.file)) {
          expr.kind = ExprKind::CallExpr;  // assumed external function
          for (ExprPtr& a : expr.args) resolve_expr(*a, scope, lang);
          return;
        }
        diags_.error(expr.loc, "reference to undeclared array '" + expr.name + "'");
        implicit_scalar(expr.name, lang, scope.proc_st, scope.file, expr.loc, scope);
        for (ExprPtr& a : expr.args) resolve_expr(*a, scope, lang);
        return;
      }
      const ir::Ty& ty = program_.symtab.ty(program_.symtab.st(base).ty);
      if (expr.coindex) {
        if (!ty.coarray) {
          diags_.error(expr.loc, "'" + expr.name + "' is not a coarray");
        }
        resolve_expr(*expr.coindex, scope, lang);
      }
      if (!ty.is_array()) {
        diags_.error(expr.loc, "'" + expr.name + "' is not an array");
      } else if (ty.rank() != expr.args.size()) {
        diags_.error(expr.loc, "'" + expr.name + "' has rank " + std::to_string(ty.rank()) +
                                   " but is subscripted with " +
                                   std::to_string(expr.args.size()) + " indices");
      }
      for (ExprPtr& a : expr.args) resolve_expr(*a, scope, lang);
      return;
    }
    case ExprKind::CallExpr: {
      if (procs_.count(to_lower(expr.name)) == 0 && !is_intrinsic(expr.name) &&
          !extern_call(expr.name, expr.loc, scope.file)) {
        diags_.error(expr.loc, "call to unknown function '" + expr.name + "'");
      }
      for (ExprPtr& a : expr.args) resolve_expr(*a, scope, lang);
      return;
    }
  }
}

}  // namespace ara::fe
