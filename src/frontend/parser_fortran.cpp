#include "frontend/parser_fortran.hpp"

#include "frontend/lexer.hpp"
#include "support/string_utils.hpp"

namespace ara::fe {

namespace {

bool is_type_keyword(std::string_view w) {
  return iequals(w, "integer") || iequals(w, "real") || iequals(w, "double") ||
         iequals(w, "character") || iequals(w, "logical");
}

}  // namespace

ModuleAst parse_fortran(const SourceManager& sm, FileId file, DiagnosticEngine& diags) {
  Lexer lexer(sm, file, diags);
  FortranParser parser(lexer.tokenize(), file, diags);
  return parser.parse_module();
}

void FortranParser::skip_newlines() {
  while (accept(Tok::Newline)) {
  }
}

void FortranParser::expect_stmt_end() {
  if (!accept(Tok::Newline) && !at_end()) {
    diags().error(peek().loc, "expected end of statement");
    // Recover: skip to the next line.
    while (!at(Tok::Newline) && !at_end()) advance();
    accept(Tok::Newline);
  }
}

ModuleAst FortranParser::parse_module() {
  ModuleAst mod;
  mod.file = file_;
  mod.lang = Language::Fortran;
  module_ = &mod;
  skip_newlines();
  while (!at_end()) {
    mod.procs.push_back(parse_unit());
    skip_newlines();
  }
  module_ = nullptr;
  return mod;
}

ProcDecl FortranParser::parse_unit() {
  ProcDecl proc;
  proc.loc = peek().loc;
  pending_common_.clear();

  if (accept_kw("program")) {
    proc.is_program = true;
    proc.name = expect(Tok::Ident, "program name").text;
  } else if (accept_kw("subroutine") || accept_kw("function")) {
    proc.name = expect(Tok::Ident, "procedure name").text;
    if (accept(Tok::LParen)) {
      if (!at(Tok::RParen)) {
        do {
          proc.params.push_back(expect(Tok::Ident, "formal parameter").text);
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "to close formal list");
    }
  } else {
    diags().error(peek().loc, "expected PROGRAM, SUBROUTINE or FUNCTION");
    advance();
  }
  expect_stmt_end();

  current_proc_ = &proc;
  proc.body = parse_body({"end"});
  current_proc_ = nullptr;

  expect_kw("end");
  // Optional "end subroutine [name]" / "end program [name]".
  if (at_kw("subroutine") || at_kw("program") || at_kw("function")) advance();
  if (at(Tok::Ident)) advance();
  expect_stmt_end();

  // Variables listed in COMMON become globals.
  for (VarDecl& d : proc.decls) {
    for (const std::string& g : pending_common_) {
      if (iequals(d.name, g)) d.is_global = true;
    }
  }
  return proc;
}

std::vector<DimSpec> FortranParser::parse_dims() {
  std::vector<DimSpec> dims;
  expect(Tok::LParen, "to open dimension list");
  do {
    DimSpec d;
    if (accept(Tok::Star)) {
      // assumed-size: lb defaults to 1, ub unknown
    } else {
      ExprPtr first = parse_expr();
      if (accept(Tok::Colon)) {
        d.lb = std::move(first);
        if (accept(Tok::Star)) {
          // a(0:*) — explicit lower bound, assumed upper
        } else {
          d.ub = parse_expr();
        }
      } else {
        d.ub = std::move(first);  // lb defaults to 1
      }
    }
    dims.push_back(std::move(d));
  } while (accept(Tok::Comma));
  expect(Tok::RParen, "to close dimension list");
  return dims;
}

void FortranParser::parse_entity_list(ProcDecl& proc, ir::Mtype mtype,
                                      const std::vector<DimSpec>* common_dims) {
  do {
    VarDecl v;
    v.loc = peek().loc;
    v.name = expect(Tok::Ident, "variable name").text;
    v.mtype = mtype;
    if (at(Tok::LParen)) {
      v.dims = parse_dims();
    }
    // Codimension: `a(10)[*]` or `a(10)[n]` declares a coarray (CAF, §VI).
    if (accept(Tok::LBracket)) {
      v.is_coarray = true;
      if (!accept(Tok::Star)) {
        auto ignored = parse_expr();
        (void)ignored;
      }
      expect(Tok::RBracket, "to close codimension");
    }
    if (v.dims.empty() && common_dims != nullptr) {
      // DIMENSION(...) attribute applies to entities without their own dims.
      for (const DimSpec& d : *common_dims) {
        DimSpec copy;
        if (d.lb) copy.lb = clone(*d.lb);
        if (d.ub) copy.ub = clone(*d.ub);
        v.dims.push_back(std::move(copy));
      }
    }
    proc.decls.push_back(std::move(v));
  } while (accept(Tok::Comma));
}

bool FortranParser::parse_decl(ProcDecl& proc) {
  if (at_kw("common")) {
    advance();
    expect(Tok::Slash, "before COMMON block name");
    expect(Tok::Ident, "COMMON block name");
    expect(Tok::Slash, "after COMMON block name");
    do {
      pending_common_.push_back(expect(Tok::Ident, "COMMON member").text);
    } while (accept(Tok::Comma));
    expect_stmt_end();
    return true;
  }
  if (!at(Tok::Ident) || !is_type_keyword(peek().text)) return false;

  ir::Mtype mtype = ir::Mtype::I4;
  if (accept_kw("integer")) {
    mtype = ir::Mtype::I4;
    if (accept(Tok::Star)) {  // integer*8
      const Token& w = expect(Tok::IntLit, "integer kind");
      mtype = w.int_val == 8 ? ir::Mtype::I8 : ir::Mtype::I4;
    }
  } else if (accept_kw("real")) {
    mtype = ir::Mtype::F4;
    if (accept(Tok::Star)) {  // real*8
      const Token& w = expect(Tok::IntLit, "real kind");
      if (w.int_val == 8) mtype = ir::Mtype::F8;
    } else if (at(Tok::LParen) && peek(1).is(Tok::IntLit) && peek(2).is(Tok::RParen)) {
      advance();  // real(8)
      if (advance().int_val == 8) mtype = ir::Mtype::F8;
      advance();
    }
  } else if (accept_kw("double")) {
    expect_kw("precision");
    mtype = ir::Mtype::F8;
  } else if (accept_kw("character")) {
    mtype = ir::Mtype::I1;
  } else if (accept_kw("logical")) {
    mtype = ir::Mtype::I4;
  }

  std::vector<DimSpec> attr_dims;
  bool has_attr_dims = false;
  if (accept(Tok::Comma)) {
    expect_kw("dimension");
    attr_dims = parse_dims();
    has_attr_dims = true;
  }
  accept(Tok::ColonColon);  // the :: is optional in our subset

  parse_entity_list(proc, mtype, has_attr_dims ? &attr_dims : nullptr);
  expect_stmt_end();
  return true;
}

std::vector<StmtPtr> FortranParser::parse_body(std::initializer_list<std::string_view> stops) {
  std::vector<StmtPtr> body;
  while (true) {
    skip_newlines();
    if (at_end()) return body;
    bool stop = false;
    for (std::string_view s : stops) {
      if (at_kw(s)) stop = true;
    }
    // "enddo"/"endif" also terminate any enclosing body that stops at "end".
    for (std::string_view s : stops) {
      if (s == "end" && (at_kw("enddo") || at_kw("endif"))) stop = true;
    }
    if (stop) return body;
    if (current_proc_ != nullptr && parse_decl(*current_proc_)) continue;
    if (StmtPtr s = parse_stmt()) body.push_back(std::move(s));
  }
}

StmtPtr FortranParser::parse_stmt() {
  // Every nested statement level (DO/IF bodies) re-enters here, so one
  // guard bounds the whole statement recursion.
  const NestingGuard guard(*this);
  if (at_kw("do")) return parse_do();
  if (at_kw("if")) return parse_if();
  if (at_kw("call")) return parse_call();
  if (at_kw("return")) {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Return;
    s->loc = advance().loc;
    expect_stmt_end();
    return s;
  }
  if (at_kw("continue")) {  // no-op statement
    advance();
    expect_stmt_end();
    return nullptr;
  }
  return parse_assignment();
}

StmtPtr FortranParser::parse_do() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Do;
  s->loc = peek().loc;
  expect_kw("do");
  s->do_var = expect(Tok::Ident, "loop variable").text;
  expect(Tok::Assign, "in DO statement");
  s->do_init = parse_expr();
  expect(Tok::Comma, "between DO bounds");
  s->do_limit = parse_expr();
  if (accept(Tok::Comma)) s->do_step = parse_expr();
  expect_stmt_end();

  s->body = parse_body({"end", "enddo"});
  if (!accept_kw("enddo")) {
    expect_kw("end");
    expect_kw("do");
  }
  expect_stmt_end();
  return s;
}

StmtPtr FortranParser::parse_if() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  s->loc = peek().loc;
  expect_kw("if");
  expect(Tok::LParen, "after IF");
  s->cond = parse_expr();
  expect(Tok::RParen, "to close IF condition");

  if (accept_kw("then")) {
    expect_stmt_end();
    s->body = parse_body({"else", "end", "endif"});
    if (accept_kw("else")) {
      expect_stmt_end();
      s->else_body = parse_body({"end", "endif"});
    }
    if (!accept_kw("endif")) {
      expect_kw("end");
      expect_kw("if");
    }
    expect_stmt_end();
    return s;
  }
  // Logical IF: a single statement on the same line.
  if (StmtPtr inner = parse_stmt()) s->body.push_back(std::move(inner));
  return s;
}

StmtPtr FortranParser::parse_call() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::CallStmt;
  s->loc = peek().loc;
  expect_kw("call");
  s->callee = expect(Tok::Ident, "subroutine name").text;
  if (accept(Tok::LParen)) {
    if (!at(Tok::RParen)) {
      do {
        s->call_args.push_back(parse_expr());
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "to close CALL arguments");
  }
  expect_stmt_end();
  return s;
}

StmtPtr FortranParser::parse_assignment() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->loc = peek().loc;
  s->lhs = parse_expr();
  if (s->lhs->kind != ExprKind::VarRef && s->lhs->kind != ExprKind::ArrayRef) {
    diags().error(s->loc, "left-hand side of assignment must be a variable or array element");
  }
  expect(Tok::Assign, "in assignment");
  s->rhs = parse_expr();
  expect_stmt_end();
  return s;
}

}  // namespace ara::fe
