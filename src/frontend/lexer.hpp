// Lexer for both input languages. Fortran mode is case-preserving but the
// parser compares identifiers case-insensitively; `!` starts a comment, `&`
// at end of line continues the statement, and `.lt. .le. .gt. .ge. .eq.
// .ne. .and. .or. .not.` are recognized alongside the symbolic operators.
// C mode handles `// and /* */` comments and compound operators.
#pragma once

#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

namespace ara::fe {

class Lexer {
 public:
  Lexer(const SourceManager& sm, FileId file, DiagnosticEngine& diags);

  /// Tokenizes the whole buffer. Fortran mode emits Newline tokens as
  /// statement separators (collapsing blank/comment lines); C mode does not.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] SourceLoc here() const;

  void lex_one(std::vector<Token>& out);
  void lex_number(std::vector<Token>& out);
  void lex_ident(std::vector<Token>& out);
  void lex_string(std::vector<Token>& out, char quote);
  void lex_dot_operator(std::vector<Token>& out);
  void push(std::vector<Token>& out, Tok kind, SourceLoc loc, std::string text = {});

  const SourceManager& sm_;
  FileId file_;
  DiagnosticEngine& diags_;
  std::string_view text_;
  Language lang_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace ara::fe
