#include "frontend/ast.hpp"

namespace ara::fe {

ExprPtr make_int(std::int64_t v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->int_val = v;
  e->loc = loc;
  return e;
}

ExprPtr make_var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->loc = e.loc;
  out->int_val = e.int_val;
  out->float_val = e.float_val;
  out->name = e.name;
  out->op = e.op;
  out->args.reserve(e.args.size());
  for (const ExprPtr& a : e.args) out->args.push_back(a ? clone(*a) : nullptr);
  if (e.coindex) out->coindex = clone(*e.coindex);
  return out;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->op = op;
  e->loc = loc;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

}  // namespace ara::fe
