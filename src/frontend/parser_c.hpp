// Recursive-descent parser for the C-like input subset: file-scope variable
// and function definitions, block-scoped declarations, canonical `for` loops
// (mapped onto the counted Do form), if/else, calls, assignments (including
// += / -= / ++), and multi-dimensional arrays `a[64][65]` (row-major,
// zero-based). Array formals may omit the first extent (`int a[]`).
#pragma once

#include "frontend/parser_base.hpp"

namespace ara::fe {

class CParser : private ParserBase {
 public:
  CParser(std::vector<Token> tokens, FileId file, DiagnosticEngine& diags)
      : ParserBase(std::move(tokens), diags, Language::C), file_(file) {}

  [[nodiscard]] ModuleAst parse_module();

 private:
  [[nodiscard]] bool at_type_keyword() const;
  [[nodiscard]] ir::Mtype parse_type();
  [[nodiscard]] std::vector<DimSpec> parse_array_suffix(bool allow_empty_first);

  void parse_external(ModuleAst& mod);
  void parse_function_rest(ModuleAst& mod, ir::Mtype ret, std::string name, SourceLoc loc);

  [[nodiscard]] std::vector<StmtPtr> parse_block(ProcDecl& proc);
  void parse_stmt_into(ProcDecl& proc, std::vector<StmtPtr>& out);
  [[nodiscard]] StmtPtr parse_for(ProcDecl& proc);
  [[nodiscard]] StmtPtr parse_if(ProcDecl& proc);
  [[nodiscard]] StmtPtr parse_simple();  // assignment or call, without ';'

  FileId file_;
};

/// Convenience: lex + parse one C file.
[[nodiscard]] ModuleAst parse_c(const SourceManager& sm, FileId file, DiagnosticEngine& diags);

}  // namespace ara::fe
