#include "frontend/parser_c.hpp"

#include "frontend/lexer.hpp"
#include "support/string_utils.hpp"

namespace ara::fe {

ModuleAst parse_c(const SourceManager& sm, FileId file, DiagnosticEngine& diags) {
  Lexer lexer(sm, file, diags);
  CParser parser(lexer.tokenize(), file, diags);
  return parser.parse_module();
}

bool CParser::at_type_keyword() const {
  if (!at(Tok::Ident)) return false;
  const std::string& w = peek().text;
  return w == "void" || w == "int" || w == "double" || w == "float" || w == "char" ||
         w == "long" || w == "short" || w == "unsigned";
}

ir::Mtype CParser::parse_type() {
  const Token& t = expect(Tok::Ident, "type name");
  const std::string& w = t.text;
  if (w == "void") return ir::Mtype::Void;
  if (w == "int") return ir::Mtype::I4;
  if (w == "double") return ir::Mtype::F8;
  if (w == "float") return ir::Mtype::F4;
  if (w == "char") return ir::Mtype::I1;
  if (w == "short") return ir::Mtype::I2;
  if (w == "long") {
    accept_kw("long");  // "long long"
    accept_kw("int");
    return ir::Mtype::I8;
  }
  if (w == "unsigned") {
    accept_kw("int");
    return ir::Mtype::U4;
  }
  diags().error(t.loc, "unknown type '" + w + "'");
  return ir::Mtype::I4;
}

std::vector<DimSpec> CParser::parse_array_suffix(bool allow_empty_first) {
  std::vector<DimSpec> dims;
  bool first = true;
  while (accept(Tok::LBracket)) {
    DimSpec d;
    d.lb = nullptr;  // C lower bound defaults to 0
    if (at(Tok::RBracket)) {
      if (!(first && allow_empty_first)) {
        diags().error(peek().loc, "only the first array extent may be omitted");
      }
      // ub stays null: assumed extent
    } else {
      // Declared as a[N]: indices run 0..N-1.
      ExprPtr n = parse_expr();
      d.ub = make_binary(BinOp::Sub, std::move(n), make_int(1, peek().loc), peek().loc);
    }
    expect(Tok::RBracket, "to close array extent");
    dims.push_back(std::move(d));
    first = false;
  }
  return dims;
}

ModuleAst CParser::parse_module() {
  ModuleAst mod;
  mod.file = file_;
  mod.lang = Language::C;
  while (!at_end()) parse_external(mod);
  return mod;
}

void CParser::parse_external(ModuleAst& mod) {
  if (!at_type_keyword()) {
    diags().error(peek().loc, "expected declaration");
    advance();
    return;
  }
  const ir::Mtype type = parse_type();
  const Token& name_tok = expect(Tok::Ident, "declarator name");
  std::string name = name_tok.text;
  const SourceLoc loc = name_tok.loc;

  if (at(Tok::LParen)) {
    parse_function_rest(mod, type, std::move(name), loc);
    return;
  }
  // Global variable(s).
  do {
    VarDecl v;
    v.name = name;
    v.mtype = type;
    v.loc = loc;
    v.is_global = true;
    v.dims = parse_array_suffix(/*allow_empty_first=*/false);
    if (accept(Tok::Assign)) { auto ignored = parse_expr(); (void)ignored; }  // initializers are ignored
    mod.globals.push_back(std::move(v));
    if (!accept(Tok::Comma)) break;
    name = expect(Tok::Ident, "declarator name").text;
  } while (true);
  expect(Tok::Semicolon, "after declaration");
}

void CParser::parse_function_rest(ModuleAst& mod, ir::Mtype /*ret*/, std::string name,
                                  SourceLoc loc) {
  ProcDecl proc;
  proc.name = std::move(name);
  proc.loc = loc;
  proc.is_program = iequals(proc.name, "main");

  expect(Tok::LParen, "after function name");
  if (!at(Tok::RParen)) {
    if (at_kw("void") && peek(1).is(Tok::RParen)) {
      advance();
    } else {
      do {
        VarDecl p;
        p.mtype = parse_type();
        const Token& pn = expect(Tok::Ident, "parameter name");
        p.name = pn.text;
        p.loc = pn.loc;
        p.dims = parse_array_suffix(/*allow_empty_first=*/true);
        proc.params.push_back(p.name);
        proc.decls.push_back(std::move(p));
      } while (accept(Tok::Comma));
    }
  }
  expect(Tok::RParen, "to close parameter list");
  expect(Tok::LBrace, "to open function body");
  proc.body = parse_block(proc);
  mod.procs.push_back(std::move(proc));
}

std::vector<StmtPtr> CParser::parse_block(ProcDecl& proc) {
  std::vector<StmtPtr> body;
  while (!at(Tok::RBrace) && !at_end()) parse_stmt_into(proc, body);
  expect(Tok::RBrace, "to close block");
  return body;
}

void CParser::parse_stmt_into(ProcDecl& proc, std::vector<StmtPtr>& out) {
  // Every nested statement level (for/if bodies, bare blocks) re-enters
  // here, so one guard bounds the whole statement recursion.
  const NestingGuard guard(*this);
  // Local declaration?
  if (at_type_keyword()) {
    const ir::Mtype type = parse_type();
    do {
      VarDecl v;
      v.mtype = type;
      const Token& n = expect(Tok::Ident, "declarator name");
      v.name = n.text;
      v.loc = n.loc;
      v.dims = parse_array_suffix(/*allow_empty_first=*/false);
      const bool is_array = !v.dims.empty();
      proc.decls.push_back(std::move(v));
      if (accept(Tok::Assign)) {
        if (is_array) diags().error(n.loc, "array initializers are not supported");
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Assign;
        s->loc = n.loc;
        s->lhs = make_var(n.text, n.loc);
        s->rhs = parse_expr();
        out.push_back(std::move(s));
      }
    } while (accept(Tok::Comma));
    expect(Tok::Semicolon, "after declaration");
    return;
  }
  if (at_kw("for")) {
    out.push_back(parse_for(proc));
    return;
  }
  if (at_kw("if")) {
    out.push_back(parse_if(proc));
    return;
  }
  if (at_kw("return")) {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Return;
    s->loc = advance().loc;
    if (!at(Tok::Semicolon)) { auto ignored = parse_expr(); (void)ignored; }  // value of the C return is ignored
    expect(Tok::Semicolon, "after return");
    out.push_back(std::move(s));
    return;
  }
  if (accept(Tok::LBrace)) {
    // Flatten nested bare blocks.
    std::vector<StmtPtr> inner = parse_block(proc);
    for (StmtPtr& s : inner) out.push_back(std::move(s));
    return;
  }
  if (accept(Tok::Semicolon)) return;  // empty statement
  StmtPtr s = parse_simple();
  expect(Tok::Semicolon, "after statement");
  if (s) out.push_back(std::move(s));
}

StmtPtr CParser::parse_simple() {
  ExprPtr e = parse_expr();
  const SourceLoc loc = e->loc;
  if (e->kind == ExprKind::CallExpr && !at(Tok::Assign) && !at(Tok::PlusEq) &&
      !at(Tok::MinusEq)) {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::CallStmt;
    s->loc = loc;
    s->callee = e->name;
    s->call_args = std::move(e->args);
    return s;
  }
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->loc = loc;
  if (accept(Tok::PlusPlus)) {
    s->lhs = clone(*e);
    s->rhs = make_binary(BinOp::Add, std::move(e), make_int(1, loc), loc);
    return s;
  }
  if (at(Tok::PlusEq) || at(Tok::MinusEq)) {
    const BinOp op = at(Tok::PlusEq) ? BinOp::Add : BinOp::Sub;
    advance();
    s->lhs = clone(*e);
    s->rhs = make_binary(op, std::move(e), parse_expr(), loc);
    return s;
  }
  expect(Tok::Assign, "in statement");
  if (e->kind != ExprKind::VarRef && e->kind != ExprKind::ArrayRef) {
    diags().error(loc, "left-hand side of assignment must be a variable or array element");
  }
  s->lhs = std::move(e);
  s->rhs = parse_expr();
  return s;
}

StmtPtr CParser::parse_for(ProcDecl& proc) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Do;
  s->loc = peek().loc;
  expect_kw("for");
  expect(Tok::LParen, "after for");

  // init: [type] var = expr
  if (at_type_keyword()) {
    VarDecl v;
    v.mtype = parse_type();
    const Token& n = expect(Tok::Ident, "loop variable");
    v.name = n.text;
    v.loc = n.loc;
    proc.decls.push_back(std::move(v));
    s->do_var = n.text;
  } else {
    s->do_var = expect(Tok::Ident, "loop variable").text;
  }
  expect(Tok::Assign, "in for-init");
  s->do_init = parse_expr();
  expect(Tok::Semicolon, "after for-init");

  // condition: var < limit | var <= limit | var > limit | var >= limit
  const Token& cv = expect(Tok::Ident, "loop variable in condition");
  if (!iequals(cv.text, s->do_var)) {
    diags().error(cv.loc, "for-condition must test the loop variable");
  }
  bool descending = false;
  std::int64_t exclusive_adjust = 0;
  if (accept(Tok::Lt)) {
    exclusive_adjust = -1;
  } else if (accept(Tok::Le)) {
  } else if (accept(Tok::Gt)) {
    descending = true;
    exclusive_adjust = 1;
  } else if (accept(Tok::Ge)) {
    descending = true;
  } else {
    diags().error(peek().loc, "for-condition must be a comparison");
  }
  ExprPtr limit = parse_expr();
  if (exclusive_adjust != 0) {
    limit = make_binary(exclusive_adjust < 0 ? BinOp::Sub : BinOp::Add, std::move(limit),
                        make_int(1, s->loc), s->loc);
  }
  s->do_limit = std::move(limit);
  expect(Tok::Semicolon, "after for-condition");

  // increment: var++ | var += k | var -= k | var = var + k | var = var - k
  const Token& iv = expect(Tok::Ident, "loop variable in increment");
  if (!iequals(iv.text, s->do_var)) {
    diags().error(iv.loc, "for-increment must update the loop variable");
  }
  if (accept(Tok::PlusPlus)) {
    s->do_step = make_int(1, iv.loc);
  } else if (accept(Tok::PlusEq)) {
    s->do_step = parse_expr();
  } else if (accept(Tok::MinusEq)) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->name = "-";
    e->loc = iv.loc;
    e->args.push_back(parse_expr());
    s->do_step = std::move(e);
  } else {
    expect(Tok::Assign, "in for-increment");
    // var = var + k  /  var = var - k
    ExprPtr rhs = parse_expr();
    bool recognized = false;
    if (rhs->kind == ExprKind::Binary && (rhs->op == BinOp::Add || rhs->op == BinOp::Sub)) {
      Expr* l = rhs->args[0].get();
      if (l->kind == ExprKind::VarRef && iequals(l->name, s->do_var)) {
        if (rhs->op == BinOp::Add) {
          s->do_step = std::move(rhs->args[1]);
        } else {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::Unary;
          e->name = "-";
          e->loc = iv.loc;
          e->args.push_back(std::move(rhs->args[1]));
          s->do_step = std::move(e);
        }
        recognized = true;
      }
    }
    if (!recognized) {
      diags().error(iv.loc, "unsupported for-increment form");
      s->do_step = make_int(1, iv.loc);
    }
  }
  if (descending && s->do_step && s->do_step->kind == ExprKind::IntLit && s->do_step->int_val > 0) {
    diags().warning(s->loc, "descending for-loop with positive step");
  }
  expect(Tok::RParen, "to close for header");

  if (accept(Tok::LBrace)) {
    s->body = parse_block(proc);
  } else {
    parse_stmt_into(proc, s->body);
  }
  return s;
}

StmtPtr CParser::parse_if(ProcDecl& proc) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  s->loc = peek().loc;
  expect_kw("if");
  expect(Tok::LParen, "after if");
  s->cond = parse_expr();
  expect(Tok::RParen, "to close if condition");
  if (accept(Tok::LBrace)) {
    s->body = parse_block(proc);
  } else {
    parse_stmt_into(proc, s->body);
  }
  if (accept_kw("else")) {
    if (accept(Tok::LBrace)) {
      s->else_body = parse_block(proc);
    } else {
      parse_stmt_into(proc, s->else_body);
    }
  }
  return s;
}

}  // namespace ara::fe
