#include "frontend/lower.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/limits.hpp"
#include "support/string_utils.hpp"

namespace ara::fe {

using ir::Mtype;
using ir::Opr;
using ir::StIdx;
using ir::WN;
using ir::WNPtr;

namespace {

/// Guards counted loops with all-constant control against pathological trip
/// counts (a `do i = 1, 2000000000` kernel is a denial-of-service input for
/// any downstream consumer, not a program to analyze). Symbolic bounds are
/// exempt — they carry no static trip count.
void check_loop_trip(const Stmt& stmt) {
  if (stmt.do_init->kind != ExprKind::IntLit || stmt.do_limit->kind != ExprKind::IntLit) return;
  std::int64_t step = 1;
  if (stmt.do_step) {
    if (stmt.do_step->kind != ExprKind::IntLit) return;
    step = stmt.do_step->int_val;
  }
  if (step == 0) return;  // diagnosed elsewhere; trip count undefined
  const std::int64_t span = step > 0 ? stmt.do_limit->int_val - stmt.do_init->int_val
                                     : stmt.do_init->int_val - stmt.do_limit->int_val;
  if (span < 0) return;  // zero-trip loop
  const std::int64_t trip = span / std::abs(step) + 1;
  const std::int64_t cap = support::active_limits().max_loop_trip;
  if (trip > cap) {
    throw support::ResourceLimitError("loop at line " + std::to_string(stmt.loc.line) +
                                      " has a constant trip count of " + std::to_string(trip) +
                                      ", above the cap of " + std::to_string(cap));
  }
}

}  // namespace

StIdx Lowerer::resolve(const std::string& name, const ProcScope& scope) const {
  const auto it = scope.names.find(to_lower(name));
  return it == scope.names.end() ? ir::kInvalidSt : it->second;
}

Mtype Lowerer::expr_mtype(const Expr& expr, const ProcScope& scope) const {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return Mtype::I8;
    case ExprKind::FloatLit:
      return Mtype::F8;
    case ExprKind::StringLit:
      return Mtype::I1;
    case ExprKind::VarRef:
    case ExprKind::ArrayRef: {
      const StIdx st = resolve(expr.name, scope);
      if (st == ir::kInvalidSt) return Mtype::I8;
      return program_.symtab.ty(program_.symtab.st(st).ty).mtype;
    }
    case ExprKind::Unary:
      return expr_mtype(*expr.args[0], scope);
    case ExprKind::Binary: {
      const Mtype a = expr_mtype(*expr.args[0], scope);
      const Mtype b = expr_mtype(*expr.args[1], scope);
      switch (expr.op) {
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Gt:
        case BinOp::Le:
        case BinOp::Ge:
        case BinOp::And:
        case BinOp::Or:
          return Mtype::I4;
        default:
          break;
      }
      if (ir::mtype_is_float(a) || ir::mtype_is_float(b)) return Mtype::F8;
      return Mtype::I8;
    }
    case ExprKind::CallExpr: {
      const std::string name = to_lower(expr.name);
      if (name == "int" || name == "nint" || name == "mod" || name == "this_image" ||
          name == "num_images") {
        return Mtype::I8;
      }
      if (expr.args.empty()) return Mtype::F8;
      return expr_mtype(*expr.args[0], scope);
    }
  }
  return Mtype::I8;
}

void Lowerer::lower_proc(const ProcScope& scope) {
  WNPtr body = lower_block(scope.decl->body, scope);
  WNPtr entry = build_.func_entry(scope.proc_st, scope.formals, std::move(body));
  entry->set_linenum(scope.decl->loc);

  ir::ProcedureIR proc;
  proc.proc_st = scope.proc_st;
  proc.file = scope.file;
  proc.tree = std::move(entry);
  program_.procedures.push_back(std::move(proc));
}

WNPtr Lowerer::lower_block(const std::vector<StmtPtr>& stmts, const ProcScope& scope) {
  WNPtr block = build_.block();
  for (const StmtPtr& s : stmts) {
    if (!s) continue;
    if (WNPtr wn = lower_stmt(*s, scope)) block->attach(std::move(wn));
  }
  return block;
}

WNPtr Lowerer::lower_stmt(const Stmt& stmt, const ProcScope& scope) {
  switch (stmt.kind) {
    case StmtKind::Assign: {
      WNPtr rhs = lower_expr(*stmt.rhs, scope);
      WNPtr out;
      if (stmt.lhs->kind == ExprKind::VarRef) {
        const StIdx st = resolve(stmt.lhs->name, scope);
        if (st == ir::kInvalidSt) return nullptr;
        out = build_.stid(st, std::move(rhs));
      } else {
        WNPtr addr = lower_array_address(*stmt.lhs, scope);
        if (!addr) return nullptr;
        if (stmt.lhs->coindex) {
          // Remote coarray PUT: a(i)[img] = ... (§VI PGAS extension).
          addr = build_.coindex(std::move(addr), lower_expr(*stmt.lhs->coindex, scope));
        }
        out = build_.istore(std::move(rhs), std::move(addr), expr_mtype(*stmt.lhs, scope));
      }
      out->set_linenum(stmt.loc);
      return out;
    }
    case StmtKind::Do: {
      const StIdx ivar = resolve(stmt.do_var, scope);
      if (ivar == ir::kInvalidSt) return nullptr;
      check_loop_trip(stmt);
      WNPtr init = lower_expr(*stmt.do_init, scope);
      WNPtr limit = lower_expr(*stmt.do_limit, scope);
      WNPtr step = stmt.do_step ? lower_expr(*stmt.do_step, scope)
                                : build_.intconst(1, Mtype::I8);
      WNPtr body = lower_block(stmt.body, scope);
      WNPtr out =
          build_.do_loop(ivar, std::move(init), std::move(limit), std::move(step), std::move(body));
      out->set_linenum(stmt.loc);
      return out;
    }
    case StmtKind::If: {
      WNPtr cond = lower_expr(*stmt.cond, scope);
      WNPtr then_b = lower_block(stmt.body, scope);
      WNPtr else_b = lower_block(stmt.else_body, scope);
      WNPtr out = build_.if_stmt(std::move(cond), std::move(then_b), std::move(else_b));
      out->set_linenum(stmt.loc);
      return out;
    }
    case StmtKind::CallStmt: {
      const auto callee = program_.symtab.find_proc(stmt.callee);
      if (!callee) return nullptr;  // diagnosed by sema
      std::vector<WNPtr> args;
      for (const ExprPtr& a : stmt.call_args) {
        if (a) args.push_back(lower_call_arg(*a, scope));
      }
      WNPtr out = build_.call(*callee, std::move(args));
      out->set_linenum(stmt.loc);
      return out;
    }
    case StmtKind::Return: {
      WNPtr out = build_.ret();
      out->set_linenum(stmt.loc);
      return out;
    }
  }
  return nullptr;
}

WNPtr Lowerer::lower_call_arg(const Expr& arg, const ProcScope& scope) {
  // Whole arrays are passed as addresses; a formal array is already an
  // address value (LDID), an owned array's address is taken with LDA. A
  // Fortran element actual (call f(a(1,j))) also passes an address — the
  // ARRAY node itself.
  if (arg.kind == ExprKind::VarRef) {
    const StIdx st = resolve(arg.name, scope);
    if (st != ir::kInvalidSt) {
      const ir::St& sym = program_.symtab.st(st);
      if (program_.symtab.ty(sym.ty).is_array()) {
        WNPtr base = sym.storage == ir::StStorage::Formal ? build_.ldid(st) : build_.lda(st);
        base->set_linenum(arg.loc);
        return base;
      }
    }
  }
  if (arg.kind == ExprKind::ArrayRef && scope.lang == Language::Fortran) {
    if (WNPtr addr = lower_array_address(arg, scope)) {
      addr->set_linenum(arg.loc);
      return addr;
    }
  }
  return lower_expr(arg, scope);
}

WNPtr Lowerer::lower_array_address(const Expr& ref, const ProcScope& scope) {
  const StIdx st = resolve(ref.name, scope);
  if (st == ir::kInvalidSt) return nullptr;
  const ir::St& sym = program_.symtab.st(st);
  const ir::Ty& ty = program_.symtab.ty(sym.ty);
  if (!ty.is_array()) return nullptr;

  const std::size_t n = ty.rank();
  if (ref.args.size() != n) return nullptr;  // diagnosed by sema

  // Collect per-dimension (extent kid, zero-based index kid) in source order,
  // then reverse for Fortran so kid order is row-major.
  std::vector<WNPtr> dim_kids(n);
  std::vector<WNPtr> idx_kids(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ir::ArrayDim& d = ty.dims[i];
    // Extent kid: constant, a named scalar's value, or 0 when unknown (the
    // paper displays variable-length arrays with total size zero).
    if (const auto e = d.extent()) {
      dim_kids[i] = build_.intconst(*e, Mtype::I8);
    } else if (!d.ub_sym.empty()) {
      const StIdx ub_st = resolve(d.ub_sym, scope);
      WNPtr ub = ub_st != ir::kInvalidSt ? build_.ldid(ub_st) : build_.intconst(0, Mtype::I8);
      if (d.lb.has_value() && *d.lb != 1) {
        // extent = ub - lb + 1
        ub = build_.binop(Opr::Sub, std::move(ub), build_.intconst(*d.lb - 1, Mtype::I8),
                          Mtype::I8);
      } else if (!d.lb.has_value() || *d.lb == 1) {
        // Fortran default lb=1: extent == ub.
      }
      dim_kids[i] = std::move(ub);
    } else {
      dim_kids[i] = build_.intconst(0, Mtype::I8);
    }
    // Index kid: subscript adjusted to a zero lower bound.
    WNPtr idx = lower_expr(*ref.args[i], scope);
    std::int64_t lb_const = d.lb.value_or(0);
    if (!d.lb.has_value() && d.lb_sym.empty()) lb_const = 0;
    if (lb_const != 0) {
      idx = build_.binop(Opr::Sub, std::move(idx), build_.intconst(lb_const, Mtype::I8),
                         Mtype::I8);
    } else if (!d.lb_sym.empty()) {
      const StIdx lb_st = resolve(d.lb_sym, scope);
      if (lb_st != ir::kInvalidSt) {
        idx = build_.binop(Opr::Sub, std::move(idx), build_.ldid(lb_st), Mtype::I8);
      }
    }
    idx_kids[i] = std::move(idx);
  }
  if (!ty.row_major) {
    std::reverse(dim_kids.begin(), dim_kids.end());
    std::reverse(idx_kids.begin(), idx_kids.end());
  }

  WNPtr base = sym.storage == ir::StStorage::Formal ? build_.ldid(st) : build_.lda(st);
  const std::int64_t esize = ty.noncontiguous ? -ty.element_size() : ty.element_size();
  WNPtr array = build_.array(std::move(base), std::move(dim_kids), std::move(idx_kids), esize);
  array->set_linenum(ref.loc);
  return array;
}

WNPtr Lowerer::lower_intrinsic(const Expr& call, const ProcScope& scope) {
  const std::string name = to_lower(call.name);
  const Mtype t = expr_mtype(call, scope);
  // n-ary max/min fold into binary chains; mod maps to the MOD operator;
  // conversions are CVTs; the rest become INTRINSIC nodes.
  if ((name == "max" || name == "min") && call.args.size() >= 2) {
    const Opr op = name == "max" ? Opr::Max : Opr::Min;
    WNPtr acc = lower_expr(*call.args[0], scope);
    for (std::size_t i = 1; i < call.args.size(); ++i) {
      acc = build_.binop(op, std::move(acc), lower_expr(*call.args[i], scope), t);
    }
    return acc;
  }
  if (name == "mod" && call.args.size() == 2) {
    return build_.binop(Opr::Mod, lower_expr(*call.args[0], scope),
                        lower_expr(*call.args[1], scope), Mtype::I8);
  }
  if ((name == "dble" || name == "real" || name == "float") && call.args.size() == 1) {
    return build_.cvt(lower_expr(*call.args[0], scope), Mtype::F8);
  }
  if ((name == "int" || name == "nint") && call.args.size() == 1) {
    return build_.cvt(lower_expr(*call.args[0], scope), Mtype::I8);
  }
  std::vector<WNPtr> args;
  for (const ExprPtr& a : call.args) args.push_back(lower_expr(*a, scope));
  return build_.intrinsic(name, std::move(args), t);
}

WNPtr Lowerer::lower_expr(const Expr& expr, const ProcScope& scope) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return build_.intconst(expr.int_val, Mtype::I8);
    case ExprKind::FloatLit:
      return build_.fconst(expr.float_val, Mtype::F8);
    case ExprKind::StringLit: {
      // Strings only appear as DEFs of character scalars in our subset;
      // model the value as the first character's code.
      const std::int64_t v = expr.name.empty() ? 0 : static_cast<unsigned char>(expr.name[0]);
      return build_.intconst(v, Mtype::I1);
    }
    case ExprKind::VarRef: {
      const StIdx st = resolve(expr.name, scope);
      if (st == ir::kInvalidSt) return build_.intconst(0, Mtype::I8);
      WNPtr out = build_.ldid(st);
      out->set_linenum(expr.loc);
      return out;
    }
    case ExprKind::ArrayRef: {
      WNPtr addr = lower_array_address(expr, scope);
      if (!addr) return build_.intconst(0, Mtype::I8);
      if (expr.coindex) {
        // Remote coarray GET.
        addr = build_.coindex(std::move(addr), lower_expr(*expr.coindex, scope));
      }
      return build_.iload(std::move(addr), expr_mtype(expr, scope));
    }
    case ExprKind::Unary: {
      WNPtr v = lower_expr(*expr.args[0], scope);
      if (expr.name == "-") return build_.neg(std::move(v), expr_mtype(expr, scope));
      auto wn = std::make_unique<WN>(Opr::Lnot, Mtype::I4);
      wn->attach(std::move(v));
      return wn;
    }
    case ExprKind::Binary: {
      static constexpr Opr kOps[] = {Opr::Add, Opr::Sub, Opr::Mpy, Opr::Div, Opr::Mod,
                                     Opr::Eq,  Opr::Ne,  Opr::Lt,  Opr::Gt,  Opr::Le,
                                     Opr::Ge,  Opr::Land, Opr::Lior};
      const Opr op = kOps[static_cast<std::size_t>(expr.op)];
      return build_.binop(op, lower_expr(*expr.args[0], scope), lower_expr(*expr.args[1], scope),
                          expr_mtype(expr, scope));
    }
    case ExprKind::CallExpr: {
      if (is_intrinsic(expr.name)) return lower_intrinsic(expr, scope);
      // User function in expression position: lower as INTRINSIC-like call
      // node so uses of array actuals still surface in the tree.
      std::vector<WNPtr> args;
      for (const ExprPtr& a : expr.args) args.push_back(lower_call_arg(*a, scope));
      return build_.intrinsic(to_lower(expr.name), std::move(args),
                              expr_mtype(expr, scope));
    }
  }
  return build_.intconst(0, Mtype::I8);
}

}  // namespace ara::fe
