// Language-neutral AST produced by both parsers and consumed by sema and
// lowering. Array dimension declarations keep their source-form bounds
// (Fortran `A(1:200, 1:200)` keeps lb=1; C `a[20]` is 0..19); conversion to
// WHIRL's row-major zero-based form happens at lowering, and Dragon converts
// back for display ("we modify the bounds, which are obtained from the
// compiler side, in Dragon ... to make our tool aware of the application's
// source code language", §V-B).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/mtype.hpp"
#include "support/source_location.hpp"
#include "support/source_manager.hpp"

namespace ara::fe {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Gt,
  Le,
  Ge,
  And,
  Or,
};

enum class ExprKind : std::uint8_t {
  IntLit,
  FloatLit,
  StringLit,
  VarRef,    // scalar variable, or whole-array mention (e.g. as an actual arg)
  ArrayRef,  // subscripted reference; args = source-order subscripts
  Binary,    // args = {lhs, rhs}
  Unary,     // Neg or Not; args = {operand}
  CallExpr,  // intrinsic/function call in expression position; args = actuals
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;
  std::int64_t int_val = 0;
  double float_val = 0.0;
  std::string name;  // VarRef/ArrayRef/CallExpr; Unary uses "-" or "!"
  BinOp op = BinOp::Add;
  std::vector<ExprPtr> args;
  /// Coarray co-subscript: `a(i)[img]` reads/writes image `img`'s copy (the
  /// paper's §VI PGAS extension). Null for ordinary accesses.
  ExprPtr coindex;
};

[[nodiscard]] ExprPtr make_int(std::int64_t v, SourceLoc loc);
[[nodiscard]] ExprPtr make_var(std::string name, SourceLoc loc);
[[nodiscard]] ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc);

/// Deep copy (Expr holds unique_ptr children, so it is move-only by default).
[[nodiscard]] ExprPtr clone(const Expr& e);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  Assign,  // lhs = rhs; lhs is VarRef or ArrayRef
  Do,      // counted loop
  If,
  CallStmt,  // subroutine call / void function call
  Return,
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;
  // Assign
  ExprPtr lhs;
  ExprPtr rhs;
  // Do
  std::string do_var;
  ExprPtr do_init;
  ExprPtr do_limit;
  ExprPtr do_step;  // null = 1
  std::vector<StmtPtr> body;
  // If
  ExprPtr cond;
  std::vector<StmtPtr> else_body;  // body = then branch
  // Call
  std::string callee;
  std::vector<ExprPtr> call_args;
};

/// One declared dimension: bounds as expressions (null ub = assumed-size /
/// variable-length; null lb = language default: 1 in Fortran, 0 in C).
struct DimSpec {
  ExprPtr lb;
  ExprPtr ub;
};

struct VarDecl {
  std::string name;
  ir::Mtype mtype = ir::Mtype::I4;
  std::vector<DimSpec> dims;  // empty = scalar
  bool is_coarray = false;    // declared with a codimension, e.g. a(10)[*]
  bool is_global = false;     // C file scope, or named in a Fortran COMMON
  SourceLoc loc;
};

struct ProcDecl {
  std::string name;
  bool is_program = false;  // Fortran PROGRAM / C main
  std::vector<std::string> params;  // formal names, in order
  std::vector<VarDecl> decls;       // formals' type decls + locals
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

/// One parsed source file.
struct ModuleAst {
  FileId file = kInvalidFileId;
  Language lang = Language::Fortran;
  std::vector<VarDecl> globals;  // C file-scope variables / Fortran COMMON
  std::vector<ProcDecl> procs;
};

}  // namespace ara::fe
