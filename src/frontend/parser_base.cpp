#include "frontend/parser_base.hpp"

#include "support/string_utils.hpp"

namespace ara::fe {

const Token& ParserBase::peek(std::size_t ahead) const {
  const std::size_t i = cursor_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& ParserBase::advance() {
  // Wall-clock watchdog checkpoint: the token cursor is the one spot every
  // parse path funnels through, so a per-unit deadline fires here even on
  // pathological inputs. Amortized to one clock read per 256 tokens.
  if ((cursor_ & 0xff) == 0) support::check_deadline();
  // AST nodes are O(tokens consumed), so metering the cursor bounds tree
  // size before any node is built.
  support::charge_ast_nodes(1);
  const Token& t = peek();
  if (cursor_ + 1 < tokens_.size()) ++cursor_;
  return t;
}

bool ParserBase::accept(Tok kind) {
  if (!at(kind)) return false;
  advance();
  return true;
}

const Token& ParserBase::expect(Tok kind, std::string_view what) {
  if (at(kind)) return advance();
  diags_.error(peek().loc, "expected " + std::string(tok_name(kind)) + " " + std::string(what) +
                               ", got '" + std::string(tok_name(peek().kind)) + "'");
  return peek();
}

bool ParserBase::at_kw(std::string_view kw) const {
  return at(Tok::Ident) && iequals(peek().text, kw);
}

bool ParserBase::accept_kw(std::string_view kw) {
  if (!at_kw(kw)) return false;
  advance();
  return true;
}

void ParserBase::expect_kw(std::string_view kw) {
  if (!accept_kw(kw)) {
    diags_.error(peek().loc, "expected '" + std::string(kw) + "'");
  }
}

ExprPtr ParserBase::parse_or() {
  ExprPtr lhs = parse_and();
  while (at(Tok::OrOr)) {
    const SourceLoc loc = advance().loc;
    lhs = make_binary(BinOp::Or, std::move(lhs), parse_and(), loc);
  }
  return lhs;
}

ExprPtr ParserBase::parse_and() {
  ExprPtr lhs = parse_cmp();
  while (at(Tok::AndAnd)) {
    const SourceLoc loc = advance().loc;
    lhs = make_binary(BinOp::And, std::move(lhs), parse_cmp(), loc);
  }
  return lhs;
}

ExprPtr ParserBase::parse_cmp() {
  ExprPtr lhs = parse_add();
  while (true) {
    BinOp op;
    switch (peek().kind) {
      case Tok::EqEq:
        op = BinOp::Eq;
        break;
      case Tok::NotEq:
        op = BinOp::Ne;
        break;
      case Tok::Lt:
        op = BinOp::Lt;
        break;
      case Tok::Gt:
        op = BinOp::Gt;
        break;
      case Tok::Le:
        op = BinOp::Le;
        break;
      case Tok::Ge:
        op = BinOp::Ge;
        break;
      default:
        return lhs;
    }
    const SourceLoc loc = advance().loc;
    lhs = make_binary(op, std::move(lhs), parse_add(), loc);
  }
}

ExprPtr ParserBase::parse_add() {
  ExprPtr lhs = parse_mul();
  while (at(Tok::Plus) || at(Tok::Minus)) {
    const BinOp op = at(Tok::Plus) ? BinOp::Add : BinOp::Sub;
    const SourceLoc loc = advance().loc;
    lhs = make_binary(op, std::move(lhs), parse_mul(), loc);
  }
  return lhs;
}

ExprPtr ParserBase::parse_mul() {
  ExprPtr lhs = parse_unary();
  while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
    const BinOp op = at(Tok::Star) ? BinOp::Mul : at(Tok::Slash) ? BinOp::Div : BinOp::Mod;
    const SourceLoc loc = advance().loc;
    lhs = make_binary(op, std::move(lhs), parse_unary(), loc);
  }
  return lhs;
}

ExprPtr ParserBase::parse_unary() {
  if (at(Tok::Minus) || at(Tok::Not)) {
    const Token& t = advance();
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Unary;
    e->name = t.kind == Tok::Minus ? "-" : "!";
    e->loc = t.loc;
    e->args.push_back(parse_unary());
    return e;
  }
  if (at(Tok::Plus)) {  // unary plus is a no-op
    advance();
    return parse_unary();
  }
  return parse_primary();
}

ExprPtr ParserBase::parse_primary() {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::IntLit: {
      advance();
      return make_int(t.int_val, t.loc);
    }
    case Tok::FloatLit: {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::FloatLit;
      e->float_val = t.float_val;
      e->loc = t.loc;
      return e;
    }
    case Tok::StringLit: {
      advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::StringLit;
      e->name = t.text;
      e->loc = t.loc;
      return e;
    }
    case Tok::LParen: {
      advance();
      ExprPtr inner = parse_expr();
      expect(Tok::RParen, "to close parenthesized expression");
      return inner;
    }
    case Tok::Ident: {
      advance();
      return parse_postfix(make_var(t.text, t.loc));
    }
    default:
      diags_.error(t.loc, "expected expression");
      advance();
      return make_int(0, t.loc);
  }
}

ExprPtr ParserBase::parse_postfix(ExprPtr base) {
  // Fortran: name(args) — array element or function reference (sema decides).
  if (lang_ == Language::Fortran && at(Tok::LParen)) {
    const SourceLoc loc = advance().loc;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::ArrayRef;
    e->name = base->name;
    e->loc = loc;
    if (!at(Tok::RParen)) {
      do {
        e->args.push_back(parse_expr());
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "to close subscript/argument list");
    // Coarray co-subscript: a(i)[img] addresses image img's copy.
    if (at(Tok::LBracket)) {
      advance();
      e->coindex = parse_expr();
      expect(Tok::RBracket, "to close co-subscript");
    }
    return e;
  }
  // C: calls and [i][j] chains.
  if (lang_ == Language::C && at(Tok::LParen)) {
    const SourceLoc loc = advance().loc;
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::CallExpr;
    e->name = base->name;
    e->loc = loc;
    if (!at(Tok::RParen)) {
      do {
        e->args.push_back(parse_expr());
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "to close call");
    return e;
  }
  if (lang_ == Language::C && at(Tok::LBracket)) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::ArrayRef;
    e->name = base->name;
    e->loc = base->loc;
    while (accept(Tok::LBracket)) {
      e->args.push_back(parse_expr());
      expect(Tok::RBracket, "to close subscript");
    }
    return e;
  }
  return base;
}

}  // namespace ara::fe
