#include "frontend/compile.hpp"

#include "frontend/lower.hpp"
#include "frontend/parser_c.hpp"
#include "frontend/parser_fortran.hpp"
#include "frontend/sema.hpp"
#include "ir/layout.hpp"
#include "ir/verifier.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"
#include "support/limits.hpp"

namespace ara::fe {

ARA_STATISTIC(stat_files, "frontend.files", "Source files parsed");
ARA_STATISTIC(stat_procs, "frontend.procs_lowered", "Procedures lowered to WHIRL");
ARA_STATISTIC(stat_wn_nodes, "ir.wn_nodes", "WHIRL nodes in lowered procedure trees");

bool compile_program(ir::Program& program, DiagnosticEngine& diags) {
  return compile_program(program, diags, CompileOptions{}, nullptr);
}

bool compile_program(ir::Program& program, DiagnosticEngine& diags, const CompileOptions& opts,
                     std::vector<ExternRef>* externs,
                     std::vector<std::string>* imported_globals) {
  // Resource guards: the AST meter is per compile, and the cooperative
  // wall-clock watchdog (armed by a LimitScope with a unit_timeout) gets a
  // checkpoint at every phase boundary below.
  support::reset_ast_budget();
  std::vector<ModuleAst> modules;
  {
    ARA_SPAN("parse", "frontend");
    for (FileId f = 1; f <= program.sources.file_count(); ++f) {
      obs::Span file_span(program.sources.name(f), "frontend");
      stat_files.bump();
      switch (program.sources.language(f)) {
        case Language::Fortran:
          modules.push_back(parse_fortran(program.sources, f, diags));
          break;
        case Language::C:
          modules.push_back(parse_c(program.sources, f, diags));
          break;
      }
    }
  }
  if (diags.has_errors()) return false;
  support::check_deadline();

  SemaOptions sema_opts;
  sema_opts.external_calls = opts.external_calls;
  sema_opts.imports = opts.imports;
  Sema sema(program, diags, sema_opts);
  SemaResult resolved = [&] {
    ARA_SPAN("sema", "frontend");
    return sema.run(modules);
  }();
  if (externs != nullptr) *externs = resolved.externs;
  if (imported_globals != nullptr) *imported_globals = resolved.imported_globals;
  if (diags.has_errors()) return false;
  support::check_deadline();

  // Array-count cap: a machine-generated unit declaring hundreds of
  // thousands of arrays would make layout and region analysis balloon;
  // demote it to a resource failure while the damage is still bounded.
  {
    std::uint64_t arrays = 0;
    for (const ir::StIdx idx : program.symtab.all_sts()) {
      if (program.symtab.ty(program.symtab.st(idx).ty).is_array()) ++arrays;
    }
    const std::uint64_t cap = support::active_limits().max_arrays;
    if (arrays > cap) {
      throw support::ResourceLimitError("unit declares " + std::to_string(arrays) +
                                        " arrays, above the cap of " + std::to_string(cap));
    }
  }

  {
    ARA_SPAN("lower", "frontend");
    Lowerer lowerer(program, diags);
    for (const ProcScope& scope : resolved.scopes) lowerer.lower_proc(scope);
    if (obs::enabled()) {
      for (const ir::ProcedureIR& p : program.procedures) {
        stat_procs.bump();
        if (p.tree) stat_wn_nodes.bump(p.tree->tree_size());
      }
    }
  }

  support::check_deadline();
  {
    ARA_SPAN("layout", "frontend");
    ir::assign_layout(program);
  }

  {
    ARA_SPAN("verify", "frontend");
    for (const std::string& err : ir::verify_program(program)) {
      diags.error(SourceLoc{}, "IR verifier: " + err);
    }
  }
  return !diags.has_errors();
}

}  // namespace ara::fe
