#include "frontend/compile.hpp"

#include "frontend/lower.hpp"
#include "frontend/parser_c.hpp"
#include "frontend/parser_fortran.hpp"
#include "frontend/sema.hpp"
#include "ir/layout.hpp"
#include "ir/verifier.hpp"

namespace ara::fe {

bool compile_program(ir::Program& program, DiagnosticEngine& diags) {
  std::vector<ModuleAst> modules;
  for (FileId f = 1; f <= program.sources.file_count(); ++f) {
    switch (program.sources.language(f)) {
      case Language::Fortran:
        modules.push_back(parse_fortran(program.sources, f, diags));
        break;
      case Language::C:
        modules.push_back(parse_c(program.sources, f, diags));
        break;
    }
  }
  if (diags.has_errors()) return false;

  Sema sema(program, diags);
  SemaResult resolved = sema.run(modules);
  if (diags.has_errors()) return false;

  Lowerer lowerer(program, diags);
  for (const ProcScope& scope : resolved.scopes) lowerer.lower_proc(scope);

  ir::assign_layout(program);

  for (const std::string& err : ir::verify_program(program)) {
    diags.error(SourceLoc{}, "IR verifier: " + err);
  }
  return !diags.has_errors();
}

}  // namespace ara::fe
