// arad — the long-lived array-analysis daemon. Listens on a Unix socket,
// speaks ara.rpc.v1 (docs/FORMATS.md), and keeps per-project analysis state
// warm between requests so re-analysis after an edit touches only the
// changed units and their transitive dependents. Runs in the foreground;
// backgrounding is the caller's job (shell `&`, a supervisor, the tests'
// fixture). `arac --daemon-connect SOCKET` is the matching client.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/server.hpp"
#include "obs/stats.hpp"
#include "serve/lockfile.hpp"
#include "support/faultinject.hpp"

namespace {

void usage(std::ostream& out) {
  out << "arad — array-analysis daemon (ara.rpc.v1 over a Unix socket)\n"
         "\n"
         "usage: arad --socket PATH [options]\n"
         "\n"
         "  --help                this text\n"
         "  --socket PATH         Unix socket to listen on (required)\n"
         "  --jobs N              request worker threads (default 2)\n"
         "  --analyze-jobs N      per-analyze unit parallelism (default 1)\n"
         "  --max-resident-mb N   warm-project memory budget; least-recently\n"
         "                        used projects are evicted past it\n"
         "                        (default 512, 0 = unbounded)\n"
         "  --cache-lock DIR      hold DIR's cache lock (with heartbeat) for\n"
         "                        the daemon's lifetime\n"
         "  --lock-stale-ms N     age after which a competing process may\n"
         "                        break the cache lock as stale (default\n"
         "                        60000; the heartbeat refreshes at N/3)\n"
         "  --max-inflight N      admission budget: concurrent requests past\n"
         "                        it shed with code:\"overloaded\" (default 0\n"
         "                        = the worker-pool size)\n"
         "  --max-queue N         accepted-but-unserved connection budget;\n"
         "                        past it new connections are answered\n"
         "                        overloaded and closed (default 64, 0 = off)\n"
         "  --max-request-bytes N per-request line cap; oversized lines\n"
         "                        answer code:\"too_large\" (default 8 MiB)\n"
         "  --idle-timeout-ms N   close connections idle (or trickling) for\n"
         "                        this long (default 30000, 0 = off)\n"
         "  --default-deadline-ms N  analyze deadline when the request does\n"
         "                        not pass deadline_ms (default 0 = none)\n"
         "  --drain-ms N          graceful-drain budget for SIGTERM or\n"
         "                        shutdown {\"drain\":true} (default 5000)\n"
         "  --retry-after-ms N    backoff hint on shed responses (default 50)\n"
         "\n"
         "SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight\n"
         "requests within --drain-ms, persist caches, exit 0.\n"
         "\n"
         "methods: analyze, query, explain, status, shutdown — one JSON\n"
         "request per line, one JSON response per line (docs/daemon.md)\n";
}

// SIGTERM/SIGINT → graceful drain. The handler may only touch
// async-signal-safe state, and the flag is also read from the watcher
// thread — a lock-free atomic is the type that is safe on both axes
// (volatile sig_atomic_t is signal-safe but races with the thread).
std::atomic<int> g_signal_drain{0};
static_assert(std::atomic<int>::is_always_lock_free);

void on_terminate_signal(int) { g_signal_drain.store(1, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  ara::daemon::DaemonOptions opts;
  std::string cache_lock_dir;
  std::uint64_t lock_stale_ms = 60'000;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* what) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::cerr << "arad: " << what << " expects a value\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      return 0;
    } else if (a == "--socket") {
      const std::string* v = next("--socket");
      if (v == nullptr) return 1;
      opts.socket_path = *v;
    } else if (a == "--jobs") {
      const std::string* v = next("--jobs");
      if (v == nullptr) return 1;
      opts.jobs = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--analyze-jobs") {
      const std::string* v = next("--analyze-jobs");
      if (v == nullptr) return 1;
      opts.analyze_jobs = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
      if (opts.analyze_jobs == 0) opts.analyze_jobs = 1;
    } else if (a == "--max-resident-mb") {
      const std::string* v = next("--max-resident-mb");
      if (v == nullptr) return 1;
      opts.max_resident_mb = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--cache-lock") {
      const std::string* v = next("--cache-lock");
      if (v == nullptr) return 1;
      cache_lock_dir = *v;
    } else if (a == "--lock-stale-ms") {
      const std::string* v = next("--lock-stale-ms");
      if (v == nullptr) return 1;
      lock_stale_ms = std::strtoull(v->c_str(), nullptr, 10);
      if (lock_stale_ms == 0) lock_stale_ms = 60'000;
    } else if (a == "--max-inflight") {
      const std::string* v = next("--max-inflight");
      if (v == nullptr) return 1;
      opts.max_inflight = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--max-queue") {
      const std::string* v = next("--max-queue");
      if (v == nullptr) return 1;
      opts.max_queue = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--max-request-bytes") {
      const std::string* v = next("--max-request-bytes");
      if (v == nullptr) return 1;
      opts.max_request_bytes = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--idle-timeout-ms") {
      const std::string* v = next("--idle-timeout-ms");
      if (v == nullptr) return 1;
      opts.idle_timeout_ms = std::strtoull(v->c_str(), nullptr, 10);
    } else if (a == "--default-deadline-ms") {
      const std::string* v = next("--default-deadline-ms");
      if (v == nullptr) return 1;
      opts.default_deadline_ms = std::strtoull(v->c_str(), nullptr, 10);
    } else if (a == "--drain-ms") {
      const std::string* v = next("--drain-ms");
      if (v == nullptr) return 1;
      opts.drain_ms = std::strtoull(v->c_str(), nullptr, 10);
    } else if (a == "--retry-after-ms") {
      const std::string* v = next("--retry-after-ms");
      if (v == nullptr) return 1;
      opts.retry_after_ms = std::strtoull(v->c_str(), nullptr, 10);
    } else {
      std::cerr << "arad: unknown option '" << a << "'\n";
      usage(std::cerr);
      return 1;
    }
  }
  if (opts.socket_path.empty()) {
    std::cerr << "arad: --socket is required\n";
    usage(std::cerr);
    return 1;
  }

  // Telemetry on for the daemon's lifetime: status reports the request
  // latency histograms and the engine's counters keep counting.
  ara::obs::set_enabled(true);

  // ARA_FAILPOINTS in the environment arms fault injection for this process
  // — how the chaos harness drives a real spawned daemon through injected
  // accept/read/handle/respond/publish failures.
  if (std::string fi_error; !ara::fi::configure_from_env(&fi_error)) {
    std::cerr << "arad: bad ARA_FAILPOINTS: " << fi_error << "\n";
    return 1;
  }

  // Optional long-lived cache lock: DirLock's heartbeat keeps the lock's
  // mtime fresh, so a concurrent `arac --cache-dir DIR` never breaks a
  // healthy daemon's lock as "stale" (it degrades to unlocked atomic
  // stores instead, per the lockfile contract).
  ara::serve::DirLock cache_lock(cache_lock_dir.empty() ? "." : cache_lock_dir,
                                 std::chrono::milliseconds(lock_stale_ms));
  if (!cache_lock_dir.empty()) {
    if (cache_lock.acquire()) {
      cache_lock.start_heartbeat();
    } else {
      std::cerr << "arad: warning: could not take the cache lock in " << cache_lock_dir
                << " (continuing without it)\n";
    }
  }

  ara::daemon::DaemonServer server(std::move(opts));
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "arad: " << error << "\n";
    return 1;
  }

  // Graceful drain on SIGTERM/SIGINT: the handler flips a flag; this watcher
  // turns it into request_shutdown(drain=true), which ends wait() and makes
  // stop() finish in-flight work inside --drain-ms before severing.
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);
  std::atomic<bool> watcher_stop{false};
  std::thread signal_watcher([&server, &watcher_stop] {
    while (!watcher_stop.load()) {
      if (g_signal_drain.load(std::memory_order_relaxed) != 0) {
        server.request_shutdown(/*drain=*/true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::cout << "arad: listening on " << server.socket_path() << std::endl;
  server.wait();
  server.stop();
  watcher_stop.store(true);
  signal_watcher.join();
  std::cout << "arad: shut down after " << server.requests() << " request(s)\n";
  return 0;
}
