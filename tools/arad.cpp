// arad — the long-lived array-analysis daemon. Listens on a Unix socket,
// speaks ara.rpc.v1 (docs/FORMATS.md), and keeps per-project analysis state
// warm between requests so re-analysis after an edit touches only the
// changed units and their transitive dependents. Runs in the foreground;
// backgrounding is the caller's job (shell `&`, a supervisor, the tests'
// fixture). `arac --daemon-connect SOCKET` is the matching client.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "daemon/server.hpp"
#include "obs/stats.hpp"
#include "serve/lockfile.hpp"

namespace {

void usage(std::ostream& out) {
  out << "arad — array-analysis daemon (ara.rpc.v1 over a Unix socket)\n"
         "\n"
         "usage: arad --socket PATH [options]\n"
         "\n"
         "  --help                this text\n"
         "  --socket PATH         Unix socket to listen on (required)\n"
         "  --jobs N              request worker threads (default 2)\n"
         "  --analyze-jobs N      per-analyze unit parallelism (default 1)\n"
         "  --max-resident-mb N   warm-project memory budget; least-recently\n"
         "                        used projects are evicted past it\n"
         "                        (default 512, 0 = unbounded)\n"
         "  --cache-lock DIR      hold DIR's cache lock (with heartbeat) for\n"
         "                        the daemon's lifetime\n"
         "\n"
         "methods: analyze, query, explain, status, shutdown — one JSON\n"
         "request per line, one JSON response per line (docs/daemon.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  ara::daemon::DaemonOptions opts;
  std::string cache_lock_dir;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* what) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::cerr << "arad: " << what << " expects a value\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      return 0;
    } else if (a == "--socket") {
      const std::string* v = next("--socket");
      if (v == nullptr) return 1;
      opts.socket_path = *v;
    } else if (a == "--jobs") {
      const std::string* v = next("--jobs");
      if (v == nullptr) return 1;
      opts.jobs = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--analyze-jobs") {
      const std::string* v = next("--analyze-jobs");
      if (v == nullptr) return 1;
      opts.analyze_jobs = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
      if (opts.analyze_jobs == 0) opts.analyze_jobs = 1;
    } else if (a == "--max-resident-mb") {
      const std::string* v = next("--max-resident-mb");
      if (v == nullptr) return 1;
      opts.max_resident_mb = static_cast<std::size_t>(std::strtoul(v->c_str(), nullptr, 10));
    } else if (a == "--cache-lock") {
      const std::string* v = next("--cache-lock");
      if (v == nullptr) return 1;
      cache_lock_dir = *v;
    } else {
      std::cerr << "arad: unknown option '" << a << "'\n";
      usage(std::cerr);
      return 1;
    }
  }
  if (opts.socket_path.empty()) {
    std::cerr << "arad: --socket is required\n";
    usage(std::cerr);
    return 1;
  }

  // Telemetry on for the daemon's lifetime: status reports the request
  // latency histograms and the engine's counters keep counting.
  ara::obs::set_enabled(true);

  // Optional long-lived cache lock: DirLock's heartbeat keeps the lock's
  // mtime fresh, so a concurrent `arac --cache-dir DIR` never breaks a
  // healthy daemon's lock as "stale" (it degrades to unlocked atomic
  // stores instead, per the lockfile contract).
  ara::serve::DirLock cache_lock(cache_lock_dir.empty() ? "." : cache_lock_dir);
  if (!cache_lock_dir.empty()) {
    if (cache_lock.acquire()) {
      cache_lock.start_heartbeat();
    } else {
      std::cerr << "arad: warning: could not take the cache lock in " << cache_lock_dir
                << " (continuing without it)\n";
    }
  }

  ara::daemon::DaemonServer server(std::move(opts));
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "arad: " << error << "\n";
    return 1;
  }
  std::cout << "arad: listening on " << server.socket_path() << std::endl;
  server.wait();
  server.stop();
  std::cout << "arad: shut down after " << server.requests() << " request(s)\n";
  return 0;
}
