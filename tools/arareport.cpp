// arareport — regression diff over run-ledger JSON artifacts (.stats.json,
// --metrics-out files, BENCH_*.json). All logic lives in obs/regress.cpp so
// the test suite can run the CLI in-process; this file only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "obs/regress.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return ara::obs::run_arareport(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "arareport: internal error: " << e.what() << "\n";
    return 2;
  } catch (...) {
    std::cerr << "arareport: internal error: unknown exception\n";
    return 2;
  }
}
