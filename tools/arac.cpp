// arac — the OpenARA command-line driver (grew out of the bring-up smoke
// binary). All logic lives in driver/cli.cpp so the test suite can run the
// CLI in-process; this file only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "driver/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // Last-resort barrier: run_arac has its own error sink, but anything that
  // escapes it (or is thrown before it engages) must still exit 1 with a
  // message, never abort with an unhandled-exception core.
  try {
    return ara::driver::run_arac(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "arac: internal error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "arac: internal error: unknown exception\n";
    return 1;
  }
}
