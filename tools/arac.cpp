// arac — the OpenARA command-line driver (grew out of the bring-up smoke
// binary). All logic lives in driver/cli.cpp so the test suite can run the
// CLI in-process; this file only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "driver/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ara::driver::run_arac(args, std::cout, std::cerr);
}
