// arafuzz — differential fuzzing driver for the array-region analysis.
//
//   arafuzz --count 500 --seed 42             # fuzz both front ends
//   arafuzz --seed 1337 --lang fortran --replay   # reproduce + dump one case
//   arafuzz --count 200 --minimize            # shrink any failure found
//
// Exit status 0 iff every generated program compiled, interpreted, and
// passed the soundness comparison (static region ⊇ observed accesses,
// static References ≥ observed distinct sites).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "difftest/crashhunt.hpp"
#include "difftest/generator.hpp"
#include "difftest/minimize.hpp"
#include "difftest/oracle.hpp"
#include "obs/provenance.hpp"

namespace {

using namespace ara;

struct CliOptions {
  std::uint64_t seed = 1;
  int count = 100;
  bool lang_c = true;
  bool lang_fortran = true;
  bool replay = false;
  bool do_minimize = false;
  bool quiet = false;
  bool crash_hunt = false;
  bool stress_fm = false;
  std::string corpus_dir;
  std::string failpoints;
  std::string precision_out;
};

void usage() {
  std::cout << "usage: arafuzz [--count N] [--seed S] [--lang c|fortran|both]\n"
               "               [--replay] [--minimize] [--quiet]\n"
               "               [--crash-hunt] [--corpus DIR] [--failpoints SPEC]\n"
               "  --count N    seeds per language (default 100; --replay forces 1)\n"
               "  --seed S     first seed (default 1)\n"
               "  --lang L     front end(s) to fuzz (default both)\n"
               "  --replay     regenerate the single seed, print the program and\n"
               "               the full comparison report\n"
               "  --minimize   on failure, shrink the generator options while the\n"
               "               failure reproduces and print the reduced program\n"
               "  --quiet      only the final summary line\n"
               "  --crash-hunt robustness mode: mutate generated programs, add\n"
               "               resource bombs, and hunt for exceptions escaping the\n"
               "               pipeline's error barrier (exit 1 if any found)\n"
               "  --corpus DIR write minimized crashers into DIR (crash-hunt only)\n"
               "  --failpoints SPEC  arm fault-injection failpoints during the hunt\n"
               "  --stress-fm  FM-stress generator grid: deep nests, many live\n"
               "               induction variables, coupled subscripts (distinct\n"
               "               program space from the default grid)\n"
               "  --precision-out FILE  write an ara.bench.v1 record aggregating\n"
               "               the corpus's precision census (messy/unprojected\n"
               "               dimension counts + provenance cause counts) for\n"
               "               arareport --check gating\n";
}

bool parse_args(int argc, char** argv, CliOptions* cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "arafuzz: " << what << " expects a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--count") {
      const char* v = next("--count");
      if (v == nullptr) return false;
      cli->count = std::atoi(v);
      if (cli->count <= 0) {
        std::cerr << "arafuzz: --count must be positive\n";
        return false;
      }
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      cli->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--lang") {
      const char* v = next("--lang");
      if (v == nullptr) return false;
      const std::string lang = v;
      cli->lang_c = lang == "c" || lang == "both";
      cli->lang_fortran = lang == "fortran" || lang == "both";
      if (!cli->lang_c && !cli->lang_fortran) {
        std::cerr << "arafuzz: unknown --lang '" << lang << "'\n";
        return false;
      }
    } else if (a == "--crash-hunt") {
      cli->crash_hunt = true;
    } else if (a == "--corpus") {
      const char* v = next("--corpus");
      if (v == nullptr) return false;
      cli->corpus_dir = v;
    } else if (a == "--failpoints") {
      const char* v = next("--failpoints");
      if (v == nullptr) return false;
      cli->failpoints = v;
    } else if (a == "--replay") {
      cli->replay = true;
    } else if (a == "--minimize") {
      cli->do_minimize = true;
    } else if (a == "--stress-fm") {
      cli->stress_fm = true;
    } else if (a == "--precision-out") {
      const char* v = next("--precision-out");
      if (v == nullptr) return false;
      cli->precision_out = v;
    } else if (a == "--quiet") {
      cli->quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else {
      std::cerr << "arafuzz: unknown option '" << a << "'\n";
      usage();
      return false;
    }
  }
  if (cli->replay) cli->count = 1;
  return true;
}

/// Aggregated precision census of one fuzz run. Every field is a count
/// over fixed seeds, so the record is byte-reproducible and `exact`-gated;
/// only the derived rate carries a tolerance direction.
struct PrecisionCensus {
  std::uint64_t programs = 0;
  std::uint64_t dims_total = 0;
  std::uint64_t dims_messy = 0;
  std::uint64_t dims_unprojected = 0;
  std::uint64_t prov_records = 0;
  std::map<std::string, std::uint64_t> causes;  // snake_case kind -> count

  void add(const difftest::DiffReport& rep) {
    ++programs;
    dims_total += rep.dims_total;
    dims_messy += rep.dims_messy;
    dims_unprojected += rep.dims_unprojected;
    prov_records += rep.provenance.size();
    for (const auto& p : rep.provenance) ++causes[std::string(obs::to_string(p.kind))];
  }

  [[nodiscard]] bool write(const std::string& path, int count) const {
    std::ofstream f(path);
    f << "{\n"
      << "  \"schema\": \"ara.bench.v1\",\n"
      << "  \"bench\": \"precision\",\n"
      << "  \"workload\": \"fuzz-" << count << "\",\n"
      << "  \"metrics\": {\n";
    auto metric = [&f](const char* name, std::uint64_t v, const char* better) {
      f << "    \"" << name << "\": {\"value\": " << v
        << ", \"unit\": \"count\", \"better\": \"" << better << "\"},\n";
    };
    metric("programs", programs, "exact");
    metric("dims_total", dims_total, "exact");
    metric("dims_messy", dims_messy, "exact");
    metric("dims_unprojected", dims_unprojected, "exact");
    metric("prov_records", prov_records, "exact");
    for (const auto& [kind, n] : causes) metric(("cause." + kind).c_str(), n, "exact");
    const double rate = dims_total == 0
                            ? 0.0
                            : static_cast<double>(dims_messy + dims_unprojected) /
                                  static_cast<double>(dims_total);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", rate);
    f << "    \"messy_dim_rate\": {\"value\": " << buf
      << ", \"unit\": \"ratio\", \"better\": \"lower\"}\n"
      << "  }\n}\n";
    return static_cast<bool>(f);
  }
};

void print_failure(const difftest::GeneratedProgram& prog, const difftest::DiffReport& rep) {
  std::cout << "FAIL seed=" << prog.seed << " lang=" << to_string(prog.lang) << "\n";
  for (const auto& v : rep.violations) {
    std::cout << "  [" << v.kind << "]";
    if (!v.array.empty()) std::cout << " " << v.array << " " << v.mode;
    std::cout << ": " << v.detail << "\n";
  }
  std::cout << "  replay: arafuzz --seed " << prog.seed << " --lang "
            << (prog.lang == Language::C ? "c" : "fortran") << " --replay\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, &cli)) return 2;

  if (cli.crash_hunt) {
    difftest::CrashHuntOptions hopts;
    hopts.seed = cli.seed;
    hopts.count = cli.count;
    hopts.corpus_dir = cli.corpus_dir;
    hopts.failpoints = cli.failpoints;
    hopts.verbose = !cli.quiet;
    const difftest::CrashHuntReport rep = difftest::crash_hunt(hopts);
    for (const difftest::Crasher& c : rep.crashers) {
      std::cout << "CRASH " << c.name << ": " << c.what << "\n";
      if (!cli.quiet) {
        std::cout << "---- minimized reproducer ----\n" << c.source << "----\n";
      }
    }
    std::cout << "arafuzz --crash-hunt: " << rep.variants << " hostile inputs, "
              << rep.crashers.size() << " crashers";
    if (!cli.corpus_dir.empty() && !rep.crashers.empty()) {
      std::cout << " (written to " << cli.corpus_dir << ")";
    }
    std::cout << "\n";
    return rep.crashers.empty() ? 0 : 1;
  }

  std::vector<Language> langs;
  if (cli.lang_c) langs.push_back(Language::C);
  if (cli.lang_fortran) langs.push_back(Language::Fortran);

  std::uint64_t programs = 0, failures = 0, points = 0, affine = 0, exact = 0;
  double max_ratio = 0.0, sum_ratio = 0.0;
  PrecisionCensus census;

  for (int n = 0; n < cli.count; ++n) {
    for (Language lang : langs) {
      difftest::GenOptions gopts;
      gopts.seed = cli.seed + static_cast<std::uint64_t>(n);
      gopts.lang = lang;
      if (cli.stress_fm) {
        // Deep coupled-subscript / many-ivar kernels: dependence systems
        // carry 2x the live induction variables (two renamed instances), so
        // raising the caps stresses long Fourier-Motzkin elimination chains
        // and the projection memo cache.
        gopts.max_loop_depth = 5;
        gopts.max_loop_vars = 6;
        gopts.coupled_pct = 60;
        gopts.stmts = 6;
      }
      const difftest::GeneratedProgram prog = difftest::generate(gopts);
      if (cli.replay) {
        std::cout << "---- " << prog.filename << " ----\n" << prog.source << "----\n";
      }
      const difftest::DiffReport rep = difftest::run_difftest(prog);
      ++programs;
      census.add(rep);
      points += rep.points_checked;
      affine += rep.entries_affine;
      exact += rep.entries_exact;
      sum_ratio += rep.sum_over_approx;
      if (rep.max_over_approx > max_ratio) max_ratio = rep.max_over_approx;

      if (rep.sound()) {
        if (cli.replay) {
          std::cout << "OK: " << rep.entries_checked << " entries, " << rep.points_checked
                    << " elements contained; " << rep.entries_exact << "/" << rep.entries_affine
                    << " affine entries exact\n";
        }
        continue;
      }
      ++failures;
      if (!cli.quiet) print_failure(prog, rep);
      if (cli.do_minimize) {
        const difftest::MinimizeResult m = difftest::minimize(gopts);
        const difftest::GeneratedProgram small = difftest::generate(m.best);
        std::cout << "  minimized (" << m.attempts << " attempts, "
                  << (m.reduced ? "reduced" : "irreducible") << "): stmts=" << m.best.stmts
                  << " arrays=" << m.best.arrays << " kernels=" << m.best.kernels
                  << " dims=" << m.best.dims << " extent=" << m.best.extent << "\n";
        std::cout << "---- minimized program ----\n" << small.source << "----\n";
      }
    }
  }

  std::cout << "arafuzz: " << programs << " programs, " << failures << " failures, " << points
            << " elements checked";
  if (affine > 0) {
    std::printf(", affine exact %llu/%llu, over-approx mean %.2f max %.2f",
                static_cast<unsigned long long>(exact), static_cast<unsigned long long>(affine),
                sum_ratio / static_cast<double>(affine), max_ratio);
  }
  std::cout << "\n";
  if (!cli.precision_out.empty()) {
    if (!census.write(cli.precision_out, cli.count)) {
      std::cerr << "arafuzz: cannot write " << cli.precision_out << "\n";
      return 2;
    }
    if (!cli.quiet) std::cout << "wrote " << cli.precision_out << "\n";
  }
  return failures == 0 ? 0 : 1;
}
