// Scratch smoke binary used during bring-up; superseded by the test suite.
#include <cstdio>
#include <iostream>

#include "driver/compiler.hpp"
#include "ir/printer.hpp"

int main(int argc, char** argv) {
  ara::driver::Compiler cc;
  for (int i = 1; i < argc; ++i) {
    if (!cc.add_file(argv[i])) {
      std::cerr << "cannot read " << argv[i] << "\n";
      return 1;
    }
  }
  if (!cc.compile()) {
    std::cerr << cc.diagnostics().render();
    return 1;
  }
  std::cout << ara::ir::dump_program(cc.program());
  auto result = cc.analyze();
  std::cout << "callgraph: " << result.callgraph.size() << " procs, "
            << result.callgraph.edge_count() << " edges\n";
  std::cout << ara::rgn::write_rgn(result.rows);
  return 0;
}
