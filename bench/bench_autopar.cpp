// Auto-parallelization view (§I / §IV-A): the tool "can assist as a
// continuation and broadening to [the APO] module". Runs the FM-based
// dependence test over every outermost loop of the NAS-LU workload and
// reports the verdict distribution, plus the dependence-test timing.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "lno/dependence.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto cg = ara::ipa::CallGraph::build(cc->program());
  const auto loops = ara::lno::find_parallel_loops(cc->program(), cg);

  std::printf("=== Auto-parallelization: outermost LU loops under the FM test ===\n");
  std::map<std::string, int> counts;
  for (const auto& loop : loops) counts[std::string(to_string(loop.verdict))]++;
  std::printf("  %zu outermost loops:", loops.size());
  for (const auto& [verdict, n] : counts) std::printf("  %s=%d", verdict.c_str(), n);
  std::printf("\n");
  for (const auto& loop : loops) {
    std::printf("    %-14s line %-4u do %-6s %-18s %s\n", loop.proc.c_str(), loop.line,
                loop.index_var.c_str(), std::string(to_string(loop.verdict)).c_str(),
                loop.verdict == ara::lno::LoopVerdict::Parallelizable ? loop.directive.c_str()
                                                                      : loop.detail.c_str());
  }
  std::printf("  (loops containing calls show the paper's APO restriction: \"function\n"
              "   calls inside loops can not be handled by this module\"; the Fig 1\n"
              "   interprocedural advisor covers those.)\n\n");
}

void BM_AnalyzeAllLuLoops(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto cg = ara::ipa::CallGraph::build(cc->program());
  for (auto _ : state) {
    auto loops = ara::lno::find_parallel_loops(cc->program(), cg);
    benchmark::DoNotOptimize(loops.size());
  }
}
BENCHMARK(BM_AnalyzeAllLuLoops)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
