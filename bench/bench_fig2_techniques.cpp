// Fig 2 reproduction: the efficiency/accuracy trade-off among array analysis
// techniques. The figure orders methods qualitatively; we measure it:
//   * storage bytes per summary (efficiency axis),
//   * false-positive coverage over a probe grid (accuracy axis),
//   * record/query time (google-benchmark section).
// Expected shape: classic is the cheapest and least precise; reference lists
// are exact but storage grows with the access count; regular sections sit
// between; the convex Regions method matches sections on rectangular
// patterns and needs FM time to compare regions (§III).
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.hpp"
#include "regions/convex_region.hpp"
#include "regions/methods.hpp"

namespace {

using namespace ara::regions;

std::vector<Point> strided_stream(std::size_t n, std::int64_t stride) {
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<std::int64_t>(i) * stride, static_cast<std::int64_t>(i % 7)});
  }
  return out;
}

void print_reproduction(const char* argv0) {
  ara::bench::BenchJson json("fig2_techniques", "strided-stream");
  std::printf("=== Fig 2: array analysis techniques — efficiency vs accuracy ===\n");
  std::printf("  %-18s %12s %14s %16s\n", "method", "bytes", "exact?", "false positives");
  for (const std::size_t n : {std::size_t{100}, std::size_t{10000}}) {
    const auto stream = strided_stream(n, 2);  // even rows only
    ClassicSummary classic;
    ReferenceList reflist;
    RegularSection section;
    for (const Point& p : stream) {
      classic.record(AccessMode::Use, p);
      reflist.record(AccessMode::Use, p);
      section.record(AccessMode::Use, p);
    }
    // Probe the grid around the accesses; off-lattice (odd) rows are the
    // false-positive opportunities.
    const std::int64_t hi = static_cast<std::int64_t>(n) * 2;
    std::size_t fp_classic = 0, fp_section = 0, fp_reflist = 0, total_neg = 0;
    std::mt19937 rng(42);
    std::uniform_int_distribution<std::int64_t> xs(0, hi);
    std::uniform_int_distribution<std::int64_t> ys(0, 6);
    for (int probe = 0; probe < 2000; ++probe) {
      const Point p{xs(rng), ys(rng)};
      const bool truly = p[0] % 2 == 0 && p[0] < hi;  // in the recorded set
      if (truly) continue;
      ++total_neg;
      fp_classic += classic.may_access(AccessMode::Use, p) ? 1 : 0;
      fp_section += section.may_access(AccessMode::Use, p) ? 1 : 0;
      fp_reflist += reflist.may_access(AccessMode::Use, p) ? 1 : 0;
    }
    std::printf("  --- %zu recorded accesses (%zu negative probes) ---\n", n, total_neg);
    std::printf("  %-18s %12zu %14s %10zu/%zu\n", "classic (2-bit)", ClassicSummary::bytes_used(),
                "no", fp_classic, total_neg);
    std::printf("  %-18s %12zu %14s %10zu/%zu\n", "regular section", section.bytes_used(), "no",
                fp_section, total_neg);
    std::printf("  %-18s %12zu %14s %10zu/%zu\n", "reference list", reflist.bytes_used(), "yes",
                fp_reflist, total_neg);
    // The probe grid is seeded (mt19937(42)), so every count here is
    // deterministic — gate them all as exact structural inventory.
    const std::string suffix = "_n" + std::to_string(n);
    json.metric("classic_bytes" + suffix, static_cast<double>(ClassicSummary::bytes_used()),
                "bytes", "exact");
    json.metric("section_bytes" + suffix, static_cast<double>(section.bytes_used()), "bytes",
                "exact");
    json.metric("reflist_bytes" + suffix, static_cast<double>(reflist.bytes_used()), "bytes",
                "exact");
    json.metric("classic_false_positives" + suffix, static_cast<double>(fp_classic), "probes",
                "exact");
    json.metric("section_false_positives" + suffix, static_cast<double>(fp_section), "probes",
                "exact");
    json.metric("reflist_false_positives" + suffix, static_cast<double>(fp_reflist), "probes",
                "exact");
    json.metric("negative_probes" + suffix, static_cast<double>(total_neg), "probes", "exact");
  }
  std::printf("  (expected ordering: classic storage < section < list;\n"
              "   accuracy the reverse — matching the Fig 2 axes)\n\n");
  json.write_next_to(argv0);
}

void BM_Record(benchmark::State& state) {
  const auto stream = strided_stream(static_cast<std::size_t>(state.range(0)), 2);
  const int method = static_cast<int>(state.range(1));
  for (auto _ : state) {
    if (method == 0) {
      ClassicSummary s;
      for (const Point& p : stream) s.record(AccessMode::Use, p);
      benchmark::DoNotOptimize(s.used());
    } else if (method == 1) {
      RegularSection s;
      for (const Point& p : stream) s.record(AccessMode::Use, p);
      benchmark::DoNotOptimize(s.bytes_used());
    } else {
      ReferenceList s;
      for (const Point& p : stream) s.record(AccessMode::Use, p);
      benchmark::DoNotOptimize(s.bytes_used());
    }
  }
  state.SetLabel(method == 0 ? "classic" : method == 1 ? "regular-section" : "reference-list");
}
BENCHMARK(BM_Record)
    ->ArgsProduct({{1 << 8, 1 << 12, 1 << 16}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

void BM_ConvexCompare(benchmark::State& state) {
  // The linear-constraint method's comparison cost: FM emptiness on two
  // rank-`r` boxes (the paper's noted drawback).
  const std::size_t rank = static_cast<std::size_t>(state.range(0));
  Region a, b;
  for (std::size_t i = 0; i < rank; ++i) {
    a.push_dim(DimAccess::range(1, 100));
    b.push_dim(DimAccess::range(50, 150));
  }
  const ConvexRegion ca = ConvexRegion::from_region(a);
  const ConvexRegion cb = ConvexRegion::from_region(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConvexRegion::certainly_disjoint(ca, cb));
  }
  state.SetLabel("rank " + std::to_string(rank));
}
BENCHMARK(BM_ConvexCompare)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
