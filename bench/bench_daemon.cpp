// Daemon serving performance on the LU workload: one arad server process'
// worth of state (in-process DaemonServer + DaemonClient over a real Unix
// socket), measuring the three analyze regimes — cold, warm (all units
// resident), incremental (one-unit edit re-analyzes changed + dependents
// only) — and the warm query path (p50/p99 latency, requests/sec). The
// headline is warm_query_speedup: how much faster a warm `query` answers
// than the cold analysis a plain one-shot arac would have to repeat.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "serve/engine.hpp"
#include "support/json.hpp"

namespace {

namespace fs = std::filesystem;
using ara::daemon::DaemonClient;
using ara::daemon::DaemonOptions;
using ara::daemon::DaemonServer;
using ara::serve::SourceBuffer;

std::vector<SourceBuffer> lu_units() {
  std::vector<SourceBuffer> units;
  for (const fs::path& f : ara::bench::lu_sources()) {
    std::optional<SourceBuffer> buf = ara::serve::read_source(f.string(), nullptr);
    if (!buf.has_value()) {
      std::fprintf(stderr, "cannot read %s\n", f.string().c_str());
      std::exit(1);
    }
    units.push_back(std::move(*buf));
  }
  return units;
}

/// analyze params for the LU project; `edited` appends a comment to one
/// unit (exact.f) so only it and its transitive callers re-analyze.
std::string analyze_params(const std::vector<SourceBuffer>& units, bool edited) {
  std::string os = "{\"project\":\"lu\",\"jobs\":4,\"sources\":[";
  bool first = true;
  for (const SourceBuffer& u : units) {
    if (!first) os += ',';
    first = false;
    std::string text = u.text;
    if (edited && fs::path(u.name).filename() == "exact.f") {
      text += "\n! edited\n";
    }
    os += "{\"name\":\"" + ara::json::escape(u.name) + "\",\"lang\":\"fortran\",\"text\":\"" +
          ara::json::escape(text) + "\"}";
  }
  os += "]}";
  return os;
}

double reply_num(const ara::daemon::RpcReply& reply, std::string_view key) {
  const ara::json::Value* m = reply.result.find(key);
  return (m != nullptr && m->is_number()) ? m->number : 0;
}

/// One timed RPC; exits on failure (a bench with a half-broken daemon
/// would otherwise report garbage).
double timed_call_ms(DaemonClient& client, const std::string& method,
                     const std::string& params, ara::daemon::RpcReply* reply_out = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.call(method, params);
  const auto t1 = std::chrono::steady_clock::now();
  if (!reply.has_value() || !reply->ok) {
    std::fprintf(stderr, "%s request failed: %s\n", method.c_str(),
                 reply.has_value() ? reply->error.c_str() : "(transport)");
    std::exit(1);
  }
  if (reply_out != nullptr) *reply_out = std::move(*reply);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Daemon {
  Daemon()
      : server(DaemonOptions{
            (fs::temp_directory_path() / ("ara_bench_daemon_" + std::to_string(::getpid()) + ".sock"))
                .string(),
            /*jobs=*/2, /*max_resident_mb=*/512, /*analyze_jobs=*/4}) {
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "cannot start daemon: %s\n", error.c_str());
      std::exit(1);
    }
    if (!client.connect(server.socket_path(), &error)) {
      std::fprintf(stderr, "cannot connect: %s\n", error.c_str());
      std::exit(1);
    }
  }
  ~Daemon() {
    client.close();
    server.stop();
  }
  DaemonServer server;
  DaemonClient client;
};

void print_reproduction(const char* argv0) {
  const std::vector<SourceBuffer> units = lu_units();
  Daemon d;

  std::printf("=== arad serving the LU workload (%zu units) ===\n", units.size());

  ara::daemon::RpcReply cold_reply;
  const double cold_ms =
      timed_call_ms(d.client, "analyze", analyze_params(units, false), &cold_reply);
  const double rows = reply_num(cold_reply, "rows");
  std::printf("  cold analyze:        %8.3f ms  (%0.f rows)\n", cold_ms, rows);

  ara::daemon::RpcReply warm_reply;
  const double warm_ms =
      timed_call_ms(d.client, "analyze", analyze_params(units, false), &warm_reply);
  std::printf("  warm analyze:        %8.3f ms  (%.0f resident, speedup %.2fx)\n", warm_ms,
              reply_num(warm_reply, "resident_hits"), cold_ms / warm_ms);

  ara::daemon::RpcReply inc_reply;
  const double inc_ms =
      timed_call_ms(d.client, "analyze", analyze_params(units, true), &inc_reply);
  const double reanalyzed = reply_num(inc_reply, "cache_misses");
  const double invalidated = reply_num(inc_reply, "invalidated_units");
  std::printf("  incremental analyze: %8.3f ms  (%.0f re-analyzed, %.0f invalidated, speedup %.2fx)\n",
              inc_ms, reanalyzed, invalidated, cold_ms / inc_ms);

  // Warm query path, two shapes: the full 942-row table (worst case — the
  // bytes dominate: ~77 KiB rendered, escaped, shipped, and parsed per
  // round trip) and the single-array query a developer actually asks
  // ("what does the analysis say about `a`?"). A short untimed warmup
  // first, then best-of-3 rounds of 200 — same idiom as batch_seconds'
  // best-of-5 — so one scheduler hiccup cannot own the p99.
  struct QueryStats {
    double p50, p99, rps;
  };
  const auto measure = [&](const char* params) {
    constexpr int kWarmup = 20;
    constexpr int kQueries = 200;
    constexpr int kRounds = 3;
    for (int i = 0; i < kWarmup; ++i) timed_call_ms(d.client, "query", params);
    QueryStats best{1e9, 1e9, 0};
    for (int round = 0; round < kRounds; ++round) {
      std::vector<double> lat_ms;
      lat_ms.reserve(kQueries);
      const auto q0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kQueries; ++i) {
        lat_ms.push_back(timed_call_ms(d.client, "query", params));
      }
      const auto q1 = std::chrono::steady_clock::now();
      std::sort(lat_ms.begin(), lat_ms.end());
      if (lat_ms[(kQueries * 99) / 100] < best.p99) {
        best.p99 = lat_ms[(kQueries * 99) / 100];
        best.p50 = lat_ms[kQueries / 2];
        best.rps = kQueries / std::chrono::duration<double>(q1 - q0).count();
      }
    }
    return best;
  };

  const QueryStats table = measure("{\"project\":\"lu\"}");
  const QueryStats one = measure("{\"project\":\"lu\",\"array\":\"a\"}");
  const double speedup = cold_ms / one.p99;
  std::printf("  warm query (table):  p50 %.3f ms, p99 %.3f ms, %.0f requests/sec\n", table.p50,
              table.p99, table.rps);
  std::printf("  warm query (array):  p50 %.3f ms, p99 %.3f ms, %.0f requests/sec\n", one.p50,
              one.p99, one.rps);
  std::printf("  warm array-query p99 vs cold analyze: %.0fx faster\n", speedup);

  ara::bench::BenchJson json("daemon", "lu");
  json.metric("units", static_cast<double>(units.size()), "count", "exact");
  json.metric("rgn_rows", rows, "count", "exact");
  json.metric("incremental_reanalyzed_units", reanalyzed, "count", "exact");
  json.metric("incremental_invalidated_units", invalidated, "count", "exact");
  json.metric("warm_resident_hits", reply_num(warm_reply, "resident_hits"), "count", "exact");
  json.metric("cold_analyze_ms", cold_ms, "ms", "lower");
  json.metric("warm_analyze_ms", warm_ms, "ms", "lower");
  json.metric("incremental_analyze_ms", inc_ms, "ms", "lower");
  json.metric("query_table_p50_ms", table.p50, "ms", "lower");
  json.metric("query_table_p99_ms", table.p99, "ms", "lower");
  json.metric("query_table_requests_per_sec", table.rps, "req/s", "higher");
  json.metric("query_array_p50_ms", one.p50, "ms", "lower");
  json.metric("query_array_p99_ms", one.p99, "ms", "lower");
  json.metric("query_array_requests_per_sec", one.rps, "req/s", "higher");
  json.metric("warm_query_speedup", speedup, "x", "higher");
  json.write_next_to(argv0);
}

void BM_DaemonWarmQuery(benchmark::State& state) {
  const std::vector<SourceBuffer> units = lu_units();
  Daemon d;
  timed_call_ms(d.client, "analyze", analyze_params(units, false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(timed_call_ms(d.client, "query", "{\"project\":\"lu\"}"));
  }
}
BENCHMARK(BM_DaemonWarmQuery)->Unit(benchmark::kMicrosecond);

void BM_DaemonResidentAnalyze(benchmark::State& state) {
  const std::vector<SourceBuffer> units = lu_units();
  Daemon d;
  const std::string params = analyze_params(units, false);
  timed_call_ms(d.client, "analyze", params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timed_call_ms(d.client, "analyze", params));
  }
}
BENCHMARK(BM_DaemonResidentAnalyze)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
