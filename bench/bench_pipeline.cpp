// End-to-end pipeline throughput (Fig 4 / Algorithm 1): front ends -> H
// WHIRL -> call-graph traversal -> region extraction -> .rgn emission, on
// the NAS-LU workload — the path a user exercises with
// `-IPA:array_section:array_summary -dragon` (§V-B step 1-2).
#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>

#include "bench_common.hpp"
#include "cfg/cfg.hpp"
#include "frontend/compile.hpp"

namespace {

void print_reproduction(const char* argv0) {
  auto cc = ara::bench::compile_lu();

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = cc->analyze();
  const double analyze_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();

  std::size_t wn_nodes = 0;
  std::size_t source_lines = 0;
  for (const auto& p : cc->program().procedures) wn_nodes += p.tree->tree_size();
  const auto& sm = cc->program().sources;
  for (ara::FileId f = 1; f <= sm.file_count(); ++f) source_lines += sm.line_count(f);
  const std::size_t rgn_bytes = ara::rgn::write_rgn(result.rows).size();

  std::printf("=== Pipeline inventory (Algorithm 1 on NAS LU) ===\n");
  std::printf("  source files:        %zu\n", sm.file_count());
  std::printf("  source lines:        %zu\n", source_lines);
  std::printf("  procedures:          %zu\n", result.callgraph.size());
  std::printf("  WHIRL nodes:         %zu\n", wn_nodes);
  std::printf("  access records:      %zu\n", result.records.size());
  std::printf("  .rgn rows:           %zu\n", result.rows.size());
  std::printf("  .rgn bytes:          %zu\n", rgn_bytes);
  std::printf("\n");

  // The inventory metrics are exact (a changed row count is a behavior
  // change, not noise); only the wall time is a measurement.
  ara::bench::BenchJson json("pipeline", "lu");
  json.metric("source_files", static_cast<double>(sm.file_count()), "count", "exact");
  json.metric("source_lines", static_cast<double>(source_lines), "count", "exact");
  json.metric("procedures", static_cast<double>(result.callgraph.size()), "count", "exact");
  json.metric("wn_nodes", static_cast<double>(wn_nodes), "count", "exact");
  json.metric("access_records", static_cast<double>(result.records.size()), "count", "exact");
  json.metric("rgn_rows", static_cast<double>(result.rows.size()), "count", "exact");
  json.metric("rgn_bytes", static_cast<double>(rgn_bytes), "count", "exact");
  json.metric("analyze_ms", analyze_ms, "ms", "lower");
  json.write_next_to(argv0);
}

void BM_FrontEndOnly(benchmark::State& state) {
  // Parse + sema + lowering, no analysis.
  std::vector<std::pair<std::string, std::string>> sources;
  {
    auto cc = std::make_unique<ara::driver::Compiler>();
    for (const auto& f : ara::bench::lu_sources()) cc->add_file(f);
    const auto& sm = cc->program().sources;
    for (ara::FileId f = 1; f <= sm.file_count(); ++f) {
      sources.emplace_back(sm.name(f), sm.text(f));
    }
  }
  for (auto _ : state) {
    ara::ir::Program program;
    ara::DiagnosticEngine diags(&program.sources);
    for (const auto& [name, text] : sources) {
      program.sources.add(name, text, ara::Language::Fortran);
    }
    const bool ok = ara::fe::compile_program(program, diags);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FrontEndOnly)->Unit(benchmark::kMillisecond);

void BM_AnalysisOnly(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  for (auto _ : state) {
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_AnalysisOnly)->Unit(benchmark::kMillisecond);

void BM_IntraproceduralOnly(benchmark::State& state) {
  // Ablation: IPL without the IPA propagation (-IPA off).
  auto cc = ara::bench::compile_lu();
  ara::ipa::AnalyzeOptions opts;
  opts.interprocedural = false;
  for (auto _ : state) {
    auto result = cc->analyze(opts);
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_IntraproceduralOnly)->Unit(benchmark::kMillisecond);

void BM_CfgConstruction(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  for (auto _ : state) {
    auto cfgs = ara::cfg::build_all(cc->program());
    benchmark::DoNotOptimize(cfgs.size());
  }
}
BENCHMARK(BM_CfgConstruction)->Unit(benchmark::kMicrosecond);

void BM_ExportDragonFiles(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  for (auto _ : state) {
    std::ostringstream sink;
    sink << ara::rgn::write_rgn(result.rows);
    sink << ara::rgn::write_dgn(ara::driver::build_dgn_project(cc->program(), result, "lu"));
    sink << ara::cfg::write_cfg(ara::cfg::build_all(cc->program()));
    benchmark::DoNotOptimize(sink.str().size());
  }
}
BENCHMARK(BM_ExportDragonFiles)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
