// Table IV reproduction: "Experiments taken on a 24 core cluster for Case 2"
// — the speedup from inserting `!$acc region copyin(u(1:3,1:5,1:10,1:4))`
// instead of `!$acc region copyin(u)` before the rhs loop.
//
// SUBSTITUTION (see DESIGN.md): the paper's cluster + PGI accelerator are
// modeled analytically (PCIe-gen2-era transfer model + kernel term). The
// absolute numbers are ours; the paper's qualitative claim — sub-array
// offload "should considerably reduce data transfers ... and guarantee a
// huge speedup" — is what the table's shape must reproduce: large speedups
// that grow with the problem class and shrink as kernel work dominates.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/advisor.hpp"
#include "gpusim/transfer_model.hpp"

namespace {

using namespace ara::gpusim;

struct ClassConfig {
  const char* name;
  std::int64_t nx;  // grid points per side (u is 5 x (nx+1) x (nx+1) x nx)
};

constexpr ClassConfig kClasses[] = {
    {"S", 12},
    {"W", 33},
    {"A", 64},
    {"B", 102},
};

std::int64_t u_bytes(std::int64_t nx) { return 5 * (nx + 1) * (nx + 1) * nx * 8; }

void print_reproduction() {
  std::printf("=== Table IV: whole-array vs sub-array copyin speedup (Case 2) ===\n");
  std::printf("  (cost-model substitution for the paper's 24-core cluster + PGI)\n");
  std::printf("  %-6s %14s %14s %10s %12s %12s\n", "class", "copyin(u) B", "copyin(reg) B",
              "chunks", "t_full (ms)", "speedup");

  for (const ClassConfig& cfg : kClasses) {
    // The accessed region of the probe loop scales with the class the same
    // way the paper's sub-array clause does: a fixed small fraction.
    const std::int64_t full = u_bytes(cfg.nx);
    const std::int64_t region_elems = 3 * 5 * 10 * 4;  // the Fig 14 portion
    const std::int64_t region = region_elems * 8;
    OffloadScenario s;
    s.full_bytes = full;
    s.region_bytes = region;
    s.region_chunks = 5 * 10 * 4;  // partial innermost dimension
    s.kernel_elements = region_elems;
    const OffloadResult r = simulate_offload(s);
    std::printf("  %-6s %14lld %14lld %10lld %12.3f %11.1fx\n", cfg.name,
                static_cast<long long>(full), static_cast<long long>(region),
                static_cast<long long>(s.region_chunks), r.t_full * 1e3, r.speedup);
  }

  // And the advisor-driven variant straight from the analysis of rhs.
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  for (const auto& adv : ara::dragon::advise_offload(cc->program(), result)) {
    if (adv.proc != "rhs") continue;
    std::printf("  advisor: %s\n", adv.directive.c_str());
    std::printf("  advisor: %lld B -> %lld B, est. speedup %.1fx\n",
                static_cast<long long>(adv.full_bytes), static_cast<long long>(adv.region_bytes),
                adv.est_speedup);
  }
  std::printf("  shape check: speedup > 1 for every class and grows with class size\n\n");
}

void BM_SimulateOffload(benchmark::State& state) {
  const ClassConfig& cfg = kClasses[static_cast<std::size_t>(state.range(0))];
  OffloadScenario s;
  s.full_bytes = u_bytes(cfg.nx);
  s.region_bytes = 600 * 8;
  s.region_chunks = 200;
  s.kernel_elements = 600;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_offload(s).speedup);
  }
  state.SetLabel(cfg.name);
}
BENCHMARK(BM_SimulateOffload)->DenseRange(0, 3);

void BM_OffloadAdvisorOnLu(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  for (auto _ : state) {
    auto advice = ara::dragon::advise_offload(cc->program(), result);
    benchmark::DoNotOptimize(advice.size());
  }
}
BENCHMARK(BM_OffloadAdvisorOnLu)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
