// Fig 11 reproduction: "the LU benchmark has 24 procedures" — the Dragon
// call graph generated when the user loads the .dgn project, exported here
// as Graphviz DOT, plus the IPA call-graph construction timing.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/dot.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();

  std::printf("=== Fig 11: Dragon call graph for NAS LU ===\n");
  ara::bench::report("procedure count", "24", std::to_string(result.callgraph.size()));
  std::size_t roots = 0;
  for (const auto& n : result.callgraph.nodes()) roots += n.is_root ? 1 : 0;
  ara::bench::report("entry nodes", "1", std::to_string(roots));
  std::printf("  call-graph edges: %zu\n", result.callgraph.edge_count());

  std::printf("  procedures:");
  for (const auto& node : result.callgraph.nodes()) {
    std::printf(" %s", cc->program().symtab.st(node.proc_st).name.c_str());
  }
  const auto project = ara::driver::build_dgn_project(cc->program(), result, "lu");
  const std::string dot = ara::dragon::callgraph_dot(project);
  std::printf("\n  DOT export: %zu bytes (starts \"digraph\"): %s\n\n", dot.size(),
              dot.rfind("digraph", 0) == 0 ? "yes" : "NO");
}

void BM_BuildCallGraph(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  for (auto _ : state) {
    auto cg = ara::ipa::CallGraph::build(cc->program());
    benchmark::DoNotOptimize(cg.edge_count());
  }
}
BENCHMARK(BM_BuildCallGraph)->Unit(benchmark::kMicrosecond);

void BM_DotExport(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  const auto project = ara::driver::build_dgn_project(cc->program(), result, "lu");
  for (auto _ : state) {
    auto dot = ara::dragon::callgraph_dot(project);
    benchmark::DoNotOptimize(dot.size());
  }
}
BENCHMARK(BM_DotExport)->Unit(benchmark::kMicrosecond);

void BM_BottomUpOrder(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto cg = ara::ipa::CallGraph::build(cc->program());
  for (auto _ : state) {
    auto order = cg.bottom_up();
    benchmark::DoNotOptimize(order.size());
  }
}
BENCHMARK(BM_BottomUpOrder)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
