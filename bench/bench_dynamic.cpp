// §VI future-work reproduction: dynamic array region information "on an
// OpenMP thread basis". Executes the Fig 10 program under the WHIRL
// interpreter, compares static References (syntactic) with dynamic element
// touches, reports per-virtual-thread regions, and times the interpreter.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "interp/interp.hpp"
#include "support/string_utils.hpp"

namespace {

ara::ir::StIdx find_array(const ara::ir::Program& p, std::string_view name) {
  for (ara::ir::StIdx idx : p.symtab.all_sts()) {
    const ara::ir::St& st = p.symtab.st(idx);
    if (st.sclass != ara::ir::StClass::Proc && ara::iequals(st.name, name)) return idx;
  }
  return ara::ir::kInvalidSt;
}

void print_reproduction() {
  auto cc = ara::bench::compile_workload("fig10_matrix.c");
  const auto analysis = cc->analyze();

  ara::interp::InterpOptions opts;
  opts.virtual_threads = 4;
  ara::interp::Interpreter interp(cc->program(), opts);
  ara::interp::DynamicSummary summary;
  const auto run = interp.run("main", &summary);

  std::printf("=== §VI: static vs dynamic array region information (matrix.c) ===\n");
  std::printf("  interpreter: %s, %llu statements\n", run.ok ? "ok" : run.error.c_str(),
              static_cast<unsigned long long>(run.steps));

  const ara::ir::StIdx aarr = find_array(cc->program(), "aarr");
  std::uint64_t static_def = 0, static_use = 0;
  for (const auto& row : analysis.rows) {
    if (!ara::iequals(row.array, "aarr")) continue;
    if (row.mode == "DEF") static_def = row.references;
    if (row.mode == "USE") static_use = row.references;
  }
  const auto* ddef = summary.entry(aarr, ara::regions::AccessMode::Def);
  const auto* duse = summary.entry(aarr, ara::regions::AccessMode::Use);
  std::printf("  %-28s %18s %18s\n", "aarr", "static (syntactic)", "dynamic (touches)");
  std::printf("  %-28s %18llu %18llu\n", "DEF references",
              static_cast<unsigned long long>(static_def),
              static_cast<unsigned long long>(ddef ? ddef->refs : 0));
  std::printf("  %-28s %18llu %18llu\n", "USE references",
              static_cast<unsigned long long>(static_use),
              static_cast<unsigned long long>(duse ? duse->refs : 0));
  std::printf("  dynamic AD(aarr, DEF): %lld%%  (paper's static AD: 2%%)\n",
              static_cast<long long>(
                  summary.dynamic_density_pct(aarr, ara::regions::AccessMode::Def,
                                              cc->program())));
  if (ddef != nullptr) {
    std::printf("  per-thread DEF touches (4 virtual threads):");
    for (const auto& [tid, refs] : ddef->refs_per_thread) {
      std::printf(" t%d=%llu", tid, static_cast<unsigned long long>(refs));
    }
    std::printf("\n  threads touch disjoint DEF regions: %s (privatization signal)\n",
                summary.threads_disjoint(aarr, ara::regions::AccessMode::Def) ? "yes" : "no");
  }
  std::printf("\n");
}

void BM_InterpretMatrixC(benchmark::State& state) {
  auto cc = ara::bench::compile_workload("fig10_matrix.c");
  for (auto _ : state) {
    ara::interp::Interpreter interp(cc->program());
    ara::interp::DynamicSummary summary;
    auto r = interp.run("main", &summary);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_InterpretMatrixC)->Unit(benchmark::kMicrosecond);

void BM_InterpretWithThreads(benchmark::State& state) {
  auto cc = ara::bench::compile_workload("fig10_matrix.c");
  ara::interp::InterpOptions opts;
  opts.virtual_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ara::interp::Interpreter interp(cc->program(), opts);
    ara::interp::DynamicSummary summary;
    auto r = interp.run("main", &summary);
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads");
}
BENCHMARK(BM_InterpretWithThreads)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_InterpretFig1(benchmark::State& state) {
  auto cc = ara::bench::compile_workload("fig1_add.f");
  for (auto _ : state) {
    ara::interp::Interpreter interp(cc->program());
    ara::interp::DynamicSummary summary;
    auto r = interp.run("add", &summary);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_InterpretFig1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
