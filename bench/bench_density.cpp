// §V-A ablation: the access-density ranking "helps the user to identify the
// hotspot arrays in the program in terms of memory allocation and frequency
// of accesses". Reproduces the density values the paper quotes and times the
// hotspot query on the LU row set.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/table.hpp"
#include "support/string_utils.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  const ara::dragon::ArrayTable table(result.rows);

  std::printf("=== Access density (AD = References / Size_bytes) ===\n");
  // The paper's quoted densities.
  auto density_of = [&](const char* scope, const char* array,
                        const char* mode) -> std::string {
    for (const auto& row : result.rows) {
      if (ara::iequals(row.scope, scope) && ara::iequals(row.array, array) &&
          row.mode == mode) {
        return std::to_string(row.acc_density);
      }
    }
    return "missing";
  };
  ara::bench::report("AD(XCR, USE)", "10", density_of("verify", "xcr", "USE"));
  ara::bench::report("AD(XCR, FORMAL)", "2", density_of("verify", "xcr", "FORMAL"));
  ara::bench::report("AD(CLASS, DEF)", "900", density_of("verify", "class", "DEF"));
  ara::bench::report("AD(U, USE)", "0", density_of("@", "u", "USE"));

  std::printf("  top hotspots by exact density:\n");
  for (const auto& row : table.hotspots(6, /*arrays_only=*/true)) {
    std::printf("    %-10s %-8s %-8s density %5lld%%  (%llu refs / %lld bytes)\n",
                row.array.c_str(), row.scope.c_str(), row.mode.c_str(),
                static_cast<long long>(row.acc_density),
                static_cast<unsigned long long>(row.references),
                static_cast<long long>(row.size_bytes));
  }
  std::printf("\n");
}

void BM_HotspotRanking(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  const ara::dragon::ArrayTable table(result.rows);
  for (auto _ : state) {
    auto hot = table.hotspots(10);
    benchmark::DoNotOptimize(hot.size());
  }
  state.counters["rows"] = static_cast<double>(result.rows.size());
}
BENCHMARK(BM_HotspotRanking)->Unit(benchmark::kMicrosecond);

void BM_DensityComputation(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto& row : result.rows) {
      acc += ara::rgn::access_density_pct(row.references, row.size_bytes);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DensityComputation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
