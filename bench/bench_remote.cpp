// §VI PGAS reproduction: remote coarray access analysis and visualization.
// Analyzes the bundled CAF halo-exchange workload, prints the RUSE/RDEF rows
// (region + image expression, "the information necessary to represent an
// accessed region including the [image] which has accessed it"), and
// measures the payoff of the advisor's aggregation suggestion under the
// transfer cost model: element-wise one-sided GETs pay one network latency
// per element, the vectorized GET pays it once.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/advisor.hpp"
#include "gpusim/transfer_model.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_workload("caf_halo.f");
  const auto result = cc->analyze();

  std::printf("=== §VI PGAS: remote coarray access analysis (caf_halo.f) ===\n");
  std::printf("  remote rows (mode, array, region, image):\n");
  for (const auto& row : result.rows) {
    if (row.mode != "RUSE" && row.mode != "RDEF") continue;
    std::printf("    %-5s %-6s (%s : %s : %s) [%s]  in %s\n", row.mode.c_str(),
                row.array.c_str(), row.lb.c_str(), row.ub.c_str(), row.stride.c_str(),
                row.image.c_str(), row.scope.c_str());
  }

  std::printf("  advisor:\n");
  for (const auto& adv : ara::dragon::advise_remote(cc->program(), result)) {
    std::printf("    %s\n", adv.message.c_str());
  }

  // Aggregation payoff under a one-sided communication model: per-element
  // GETs vs one bulk GET of the same region (64 elements x 8 B).
  ara::gpusim::TransferModel net;
  net.latency_s = 2e-6;       // interconnect one-sided latency
  net.bandwidth_Bps = 10e9;   // link bandwidth
  const std::int64_t elems = 64;
  const double elementwise = static_cast<double>(elems) * net.transfer_time(8, 1);
  const double aggregated = net.transfer_time(elems * 8, 1);
  std::printf("  aggregation payoff: %d element GETs = %.1f us  vs  one bulk GET = %.1f us"
              "  (%.1fx)\n\n",
              static_cast<int>(elems), elementwise * 1e6, aggregated * 1e6,
              elementwise / aggregated);
}

void BM_AnalyzeCafWorkload(benchmark::State& state) {
  for (auto _ : state) {
    auto cc = ara::bench::compile_workload("caf_halo.f");
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_AnalyzeCafWorkload)->Unit(benchmark::kMicrosecond);

void BM_RemoteAdvisor(benchmark::State& state) {
  auto cc = ara::bench::compile_workload("caf_halo.f");
  const auto result = cc->analyze();
  for (auto _ : state) {
    auto advice = ara::dragon::advise_remote(cc->program(), result);
    benchmark::DoNotOptimize(advice.size());
  }
}
BENCHMARK(BM_RemoteAdvisor)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
