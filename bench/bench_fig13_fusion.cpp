// Fig 13 reproduction: the loop-merge case in LU's verify. "XCR has been
// used in two separate loops ... Once in the first one, and three times in
// the second. Remembering that the same region is being used, and knowing
// that no dependencies exist, we can merge the two loops and have one
// `!$omp parallel do` inserted right before the merged loop. We could
// optimize cache utilization ... and avoid omp parallel region startup
// overheads."
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/advisor.hpp"
#include "gpusim/transfer_model.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();

  std::printf("=== Fig 13: loop fusion guidance in verify ===\n");
  const auto advice = ara::dragon::advise_fusion(cc->program(), result);
  const ara::dragon::FusionAdvice* verify_adv = nullptr;
  for (const auto& a : advice) {
    if (a.proc == "verify") verify_adv = &a;
  }
  if (verify_adv == nullptr) {
    std::printf("  NO FUSION ADVICE FOUND\n");
    return;
  }
  ara::bench::report("candidate procedure", "verify", verify_adv->proc);
  const bool has_xcr = std::find(verify_adv->shared_arrays.begin(),
                                 verify_adv->shared_arrays.end(),
                                 std::string("xcr")) != verify_adv->shared_arrays.end();
  ara::bench::report("shared re-read array includes xcr", "yes", has_xcr ? "yes" : "NO");
  ara::bench::report("suggests single parallel do", "yes",
                     verify_adv->message.find("!$omp parallel do") != std::string::npos
                         ? "yes"
                         : "NO");
  std::printf("  advice: %s\n", verify_adv->message.c_str());

  const ara::gpusim::FusionModel model;
  const double before = model.time_unfused(verify_adv->refetched_bytes);
  const double after = model.time_fused(verify_adv->refetched_bytes);
  std::printf("  cost model: unfused %.3e s, fused %.3e s (%.2fx — one fetch of XCR and one\n"
              "  parallel-region startup saved)\n\n",
              before, after, before / after);
}

void BM_FusionAdvisorOnLu(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  for (auto _ : state) {
    auto advice = ara::dragon::advise_fusion(cc->program(), result);
    benchmark::DoNotOptimize(advice.size());
  }
}
BENCHMARK(BM_FusionAdvisorOnLu)->Unit(benchmark::kMillisecond);

void BM_FusionCostModel(benchmark::State& state) {
  const ara::gpusim::FusionModel model;
  const std::int64_t bytes = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.time_unfused(bytes) / model.time_fused(bytes));
  }
}
BENCHMARK(BM_FusionCostModel)->Arg(40)->Arg(4096)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
