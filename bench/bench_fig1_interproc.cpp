// Fig 1 reproduction: interprocedural access analysis of the Add/P1/P2
// example. "Once procedure P1 is invoked, the region of array A represented
// by (1:100:1, 1:100:1) will be defined. Similarly, on invocation of P2, the
// region (101:200:1, 101:200:1) will be used. ... This implies that both
// procedures can concurrently and safely be parallelized."
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/advisor.hpp"
#include "regions/convex_region.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_workload("fig1_add.f");
  const auto result = cc->analyze();

  std::printf("=== Fig 1: interprocedural access analysis (Add / P1 / P2) ===\n");
  std::string idef, iuse;
  for (const auto& row : result.rows) {
    if (row.mode == "IDEF") idef = "(" + row.lb + " : " + row.ub + ")";
    if (row.mode == "IUSE") iuse = "(" + row.lb + " : " + row.ub + ")";
  }
  ara::bench::report("IDEF of A at call p1", "(1|1 : 100|100)", idef);
  ara::bench::report("IUSE of A at call p2", "(101|101 : 200|200)", iuse);

  const auto advice = ara::dragon::advise_parallel_calls(cc->program(), result);
  std::string verdict = "none";
  for (const auto& a : advice) {
    if (a.proc == "add") verdict = a.parallelizable ? "PARALLELIZABLE" : "CONFLICT";
  }
  ara::bench::report("P1/P2 concurrency verdict", "PARALLELIZABLE", verdict);
  std::printf("\n");
}

void BM_Fig1FullAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    auto cc = ara::bench::compile_workload("fig1_add.f");
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.records.size());
  }
}
BENCHMARK(BM_Fig1FullAnalysis)->Unit(benchmark::kMicrosecond);

void BM_DisjointnessProof(benchmark::State& state) {
  // The Fourier–Motzkin emptiness test behind the verdict.
  using namespace ara::regions;
  const Region def({DimAccess::range(1, 100), DimAccess::range(1, 100)});
  const Region use({DimAccess::range(101, 200), DimAccess::range(101, 200)});
  for (auto _ : state) {
    const bool disjoint = ConvexRegion::certainly_disjoint(ConvexRegion::from_region(def),
                                                           ConvexRegion::from_region(use));
    benchmark::DoNotOptimize(disjoint);
  }
}
BENCHMARK(BM_DisjointnessProof)->Unit(benchmark::kMicrosecond);

void BM_ParallelCallsAdvisor(benchmark::State& state) {
  auto cc = ara::bench::compile_workload("fig1_add.f");
  const auto result = cc->analyze();
  for (auto _ : state) {
    auto advice = ara::dragon::advise_parallel_calls(cc->program(), result);
    benchmark::DoNotOptimize(advice.size());
  }
}
BENCHMARK(BM_ParallelCallsAdvisor)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
