// Telemetry overhead on the end-to-end pipeline: the same NAS-LU
// compile+analyze run with observability disabled (the shipping default, one
// predicted branch per event) and enabled (counters + span timeline). The
// reproduction header emits a BENCH_obs.json record so the perf trajectory
// of the obs subsystem is machine-readable; the acceptance bar from ISSUE 3
// is disabled-overhead <= 2% vs the untelemetered pipeline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"

namespace {

/// Median-of-repeats wall time for one full analyze() pass on NAS LU.
double analyze_seconds(ara::driver::Compiler& cc, int repeats) {
  double best = 1e9;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = cc.analyze();
    benchmark::DoNotOptimize(result.rows.size());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void print_reproduction() {
  auto cc = ara::bench::compile_lu();

  ara::obs::set_enabled(false);
  const double off_s = analyze_seconds(*cc, 9);

  ara::obs::set_enabled(true);
  ara::obs::StatsRegistry::instance().reset();
  ara::obs::Timeline::instance().clear();
  const double on_s = analyze_seconds(*cc, 9);
  const std::size_t counters = ara::obs::StatsRegistry::instance().snapshot(true).size();
  const std::size_t spans = ara::obs::Timeline::instance().completed().size();
  ara::obs::set_enabled(false);
  ara::obs::StatsRegistry::instance().reset();
  ara::obs::Timeline::instance().clear();

  const double overhead_pct = off_s > 0.0 ? (on_s - off_s) / off_s * 100.0 : 0.0;
  std::printf("=== Telemetry overhead (analyze() on NAS LU, best of 9) ===\n");
  std::printf("  telemetry off:       %.3f ms\n", off_s * 1e3);
  std::printf("  telemetry on:        %.3f ms  (%zu counters, %zu spans)\n", on_s * 1e3,
              counters, spans);
  std::printf("  enabled overhead:    %+.2f %%\n", overhead_pct);
  std::printf("BENCH_obs.json: {\"bench\": \"obs_overhead\", \"workload\": \"lu\", "
              "\"off_ms\": %.4f, \"on_ms\": %.4f, \"overhead_pct\": %.3f, "
              "\"counters\": %zu, \"spans\": %zu}\n\n",
              off_s * 1e3, on_s * 1e3, overhead_pct, counters, spans);
}

void BM_AnalyzeTelemetryOff(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  ara::obs::set_enabled(false);
  for (auto _ : state) {
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_AnalyzeTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTelemetryOn(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  ara::obs::set_enabled(true);
  for (auto _ : state) {
    // Reset per iteration so the timeline does not grow without bound.
    ara::obs::Timeline::instance().clear();
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
  ara::obs::set_enabled(false);
  ara::obs::StatsRegistry::instance().reset();
  ara::obs::Timeline::instance().clear();
}
BENCHMARK(BM_AnalyzeTelemetryOn)->Unit(benchmark::kMillisecond);

void BM_CounterBumpDisabled(benchmark::State& state) {
  // The per-event cost the macro promises: one load + predicted branch.
  static ara::obs::Counter counter{"bench.obs_bump", "overhead probe"};
  ara::obs::set_enabled(false);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) counter.bump();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CounterBumpDisabled);

void BM_CounterBumpEnabled(benchmark::State& state) {
  static ara::obs::Counter counter{"bench.obs_bump_on", "overhead probe"};
  ara::obs::set_enabled(true);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) counter.bump();
  }
  ara::obs::set_enabled(false);
  ara::obs::StatsRegistry::instance().reset();
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CounterBumpEnabled);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
