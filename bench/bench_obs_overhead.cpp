// Telemetry overhead on the end-to-end pipeline: the same NAS-LU
// compile+analyze run with observability disabled (the shipping default, one
// predicted branch per event) and enabled (counters + histograms + span
// timeline + event log). Writes the unified BENCH_obs_overhead.json record
// (ara.bench.v1) so the perf trajectory of the obs subsystem stays
// machine-readable across versions.
//
// The dormant-cost contract cannot be measured directly — there is no build
// without the ledger compiled in — so the gate works from a projection:
// microbench the disabled per-probe cost (one predicted branch each for a
// counter bump, a histogram record, and an event-log record), multiply by
// the number of probes a real run fires, and compare against the disabled
// run's wall time. `--gate PCT` exits 1 when that projection reaches PCT%
// (the perf-smoke ctest entry uses 5).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"
#include "obs/eventlog.hpp"
#include "obs/histogram.hpp"
#include "obs/provenance.hpp"
#include "obs/stats.hpp"
#include "obs/timeline.hpp"

namespace {

/// Median-of-repeats wall time for one full analyze() pass on NAS LU.
double analyze_seconds(ara::driver::Compiler& cc, int repeats) {
  double best = 1e9;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = cc.analyze();
    benchmark::DoNotOptimize(result.rows.size());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void reset_ledger() {
  ara::obs::StatsRegistry::instance().reset();
  ara::obs::HistogramRegistry::instance().reset();
  ara::obs::Timeline::instance().clear();
  ara::obs::EventLog::instance().clear();
}

/// The disabled cost of one ledger probe, averaged over counter bumps,
/// histogram records, event-log records, and provenance records (each is
/// a load + predicted branch when dormant).
double disabled_probe_ns() {
  static ara::obs::Counter probe_counter{"bench.obs_probe", "dormant-cost probe"};
  ARA_HISTOGRAM(probe_hist, "bench.obs_probe_ns", "dormant-cost probe", "ns");
  ara::obs::set_enabled(false);
  constexpr int kIters = 1 << 21;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    probe_counter.bump();
    probe_hist.record(1);
    ara::obs::EventLog::instance().record(0, "probe", ara::obs::UnitEvent::Queued);
    ara::obs::prov_record(ara::obs::CauseKind::NonAffineSubscript, {}, 0, {});
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double total_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return total_ns / (4.0 * kIters);
}

/// Prints the overhead report, writes BENCH_obs_overhead.json, and returns
/// the projected disabled-ledger overhead percentage (the --gate metric).
double print_reproduction(const char* argv0) {
  auto cc = ara::bench::compile_lu();

  ara::obs::set_enabled(false);
  const double off_s = analyze_seconds(*cc, 9);

  ara::obs::set_enabled(true);
  reset_ledger();
  const double on_s = analyze_seconds(*cc, 9);

  // Ledger volume of one enabled run: counters count every bump (the value
  // IS the probe count), histograms their samples, spans fire two probes
  // (begin + end). The last of the 9 timed repeats left this state behind.
  std::uint64_t probes = 0;
  const auto counter_snap = ara::obs::StatsRegistry::instance().snapshot(true);
  for (const auto& c : counter_snap) probes += c.value;
  std::uint64_t hist_samples = 0;
  for (const auto& h : ara::obs::HistogramRegistry::instance().snapshot(true)) {
    hist_samples += h.count;
  }
  probes += hist_samples;
  const std::size_t spans = ara::obs::Timeline::instance().completed().size();
  probes += 2 * static_cast<std::uint64_t>(spans);
  // analyze_seconds clears nothing between repeats; normalize to one run.
  probes /= 9;
  ara::obs::set_enabled(false);
  reset_ledger();

  const double probe_ns = disabled_probe_ns();
  const double projected_pct =
      off_s > 0.0 ? probe_ns * static_cast<double>(probes) / (off_s * 1e9) * 100.0 : 0.0;
  const double overhead_pct = off_s > 0.0 ? (on_s - off_s) / off_s * 100.0 : 0.0;

  std::printf("=== Telemetry overhead (analyze() on NAS LU, best of 9) ===\n");
  std::printf("  telemetry off:       %.3f ms\n", off_s * 1e3);
  std::printf("  telemetry on:        %.3f ms  (%zu counters, %zu spans, %llu samples)\n",
              on_s * 1e3, counter_snap.size(), spans,
              static_cast<unsigned long long>(hist_samples));
  std::printf("  enabled overhead:    %+.2f %%\n", overhead_pct);
  std::printf("  dormant probe cost:  %.3f ns  x %llu probes/run\n", probe_ns,
              static_cast<unsigned long long>(probes));
  std::printf("  projected disabled overhead: %.4f %%\n\n", projected_pct);

  ara::bench::BenchJson json("obs_overhead", "lu");
  json.metric("off_ms", off_s * 1e3, "ms", "lower");
  json.metric("on_ms", on_s * 1e3, "ms", "lower");
  json.metric("enabled_overhead_pct", overhead_pct, "pct", "neutral");
  json.metric("dormant_probe_ns", probe_ns, "ns", "lower");
  json.metric("probes_per_run", static_cast<double>(probes), "count", "neutral");
  json.metric("projected_disabled_overhead_pct", projected_pct, "pct", "lower");
  json.metric("counters", static_cast<double>(counter_snap.size()), "count", "exact");
  json.metric("spans", static_cast<double>(spans), "count", "exact");
  json.write_next_to(argv0);
  return projected_pct;
}

void BM_AnalyzeTelemetryOff(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  ara::obs::set_enabled(false);
  for (auto _ : state) {
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_AnalyzeTelemetryOff)->Unit(benchmark::kMillisecond);

void BM_AnalyzeTelemetryOn(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  ara::obs::set_enabled(true);
  for (auto _ : state) {
    // Reset per iteration so the timeline does not grow without bound.
    ara::obs::Timeline::instance().clear();
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
  ara::obs::set_enabled(false);
  reset_ledger();
}
BENCHMARK(BM_AnalyzeTelemetryOn)->Unit(benchmark::kMillisecond);

void BM_CounterBumpDisabled(benchmark::State& state) {
  // The per-event cost the macro promises: one load + predicted branch.
  static ara::obs::Counter counter{"bench.obs_bump", "overhead probe"};
  ara::obs::set_enabled(false);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) counter.bump();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CounterBumpDisabled);

void BM_CounterBumpEnabled(benchmark::State& state) {
  static ara::obs::Counter counter{"bench.obs_bump_on", "overhead probe"};
  ara::obs::set_enabled(true);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) counter.bump();
  }
  ara::obs::set_enabled(false);
  ara::obs::StatsRegistry::instance().reset();
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CounterBumpEnabled);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  ARA_HISTOGRAM(hist, "bench.obs_hist_off", "overhead probe", "ns");
  ara::obs::set_enabled(false);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) hist.record(static_cast<std::uint64_t>(i));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  ARA_HISTOGRAM(hist, "bench.obs_hist_on", "overhead probe", "ns");
  ara::obs::set_enabled(true);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) hist.record(static_cast<std::uint64_t>(i));
  }
  ara::obs::set_enabled(false);
  ara::obs::HistogramRegistry::instance().reset();
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_EventLogRecordEnabled(benchmark::State& state) {
  ara::obs::set_enabled(true);
  ara::obs::EventLog::instance().clear();
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      ara::obs::EventLog::instance().record(static_cast<std::uint32_t>(i), "unit.f",
                                            ara::obs::UnitEvent::Started);
    }
  }
  ara::obs::set_enabled(false);
  ara::obs::EventLog::instance().clear();
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventLogRecordEnabled);

}  // namespace

int main(int argc, char** argv) {
  double gate = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate = std::atof(argv[i + 1]);
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  const double projected = print_reproduction(argv[0]);
  if (gate >= 0.0) {
    if (projected >= gate) {
      std::fprintf(stderr, "FAIL: projected disabled-ledger overhead %.4f%% >= gate %.1f%%\n",
                   projected, gate);
      return 1;
    }
    std::printf("gate ok: projected disabled-ledger overhead %.4f%% < %.1f%%\n", projected,
                gate);
  }
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
