// Overload behavior of the daemon under saturating client load (ISSUE 10):
// 8 persistent clients spam warm queries against an admission budget of 2,
// while a connection storm hammers the accept path against a 4-deep queue.
// Reports the shed rate, the p99 of admitted requests vs the uncontended
// warm-query p99 (the acceptance wants <= 2x), the latency of shed replies
// (the acceptance wants < 10 ms — they are answered without queuing), and
// the maximum queue depth observed (bounded by --max-queue).
//
// The committed baseline (bench/baselines/BENCH_daemon_overload.json) pins
// only the exact inventory — clients, requests, responses, budgets — so the
// perf-smoke gate catches silently shrunk load or lost responses without
// flaking on host timing; the latency and shed-rate metrics ride along
// informationally.
#include <benchmark/benchmark.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "daemon/client.hpp"
#include "daemon/server.hpp"
#include "support/json.hpp"

namespace {

namespace fs = std::filesystem;
using ara::daemon::DaemonClient;
using ara::daemon::DaemonOptions;
using ara::daemon::DaemonServer;

constexpr int kClients = 8;            // persistent spamming clients
constexpr int kRequestsPerClient = 300;
constexpr int kStormConnections = 32;  // one-shot connections during the spam
constexpr std::size_t kMaxInflight = 1;
constexpr std::size_t kMaxQueue = 4;
constexpr std::uint64_t kRetryAfterMs = 5;
constexpr int kProcsPerUnit = 150;     // enough table rows that queries overlap

std::string c_unit(int n) {
  const std::string i = std::to_string(n);
  return "double arr" + i + "[16][16];\nvoid proc" + i +
         "(void) {\n  int i, j;\n  for (i = 0; i < 16; i++) {\n"
         "    for (j = 0; j < 16; j++) {\n      arr" + i +
         "[i][j] = i + j;\n    }\n  }\n}\n";
}

std::string analyze_params() {
  // One bulky unit: the rendered query table is big enough (kProcsPerUnit
  // scopes) that concurrent queries genuinely overlap inside handle_line,
  // which is what drives the admission budget into shedding.
  std::string text;
  for (int p = 0; p < kProcsPerUnit; ++p) text += c_unit(p);
  std::string os = "{\"project\":\"overload\",\"sources\":[";
  os += "{\"name\":\"bulk.c\",\"lang\":\"c\",\"text\":\"" + ara::json::escape(text) + "\"}";
  os += "]}";
  return os;
}

double percentile(std::vector<double>& ms, int pct) {
  if (ms.empty()) return 0;
  std::sort(ms.begin(), ms.end());
  return ms[std::min(ms.size() - 1, (ms.size() * static_cast<std::size_t>(pct)) / 100)];
}

/// One storm probe: raw socket, 50 ms client-side read timeout (a queued
/// connection must not block the bench until the spam phase ends). Returns
/// the round-trip latency and which outcome the connection met.
enum class StormOutcome { Shed, Served, TimedOut, Failed };
StormOutcome storm_probe(const std::string& socket_path, double* latency_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return StormOutcome::Failed;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  timeval tv{0, 50'000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  StormOutcome outcome = StormOutcome::Failed;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
    const char req[] = "{\"id\":1,\"method\":\"query\",\"params\":{\"project\":\"overload\"}}\n";
    (void)::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL);
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      const std::string_view reply(buf, static_cast<std::size_t>(n));
      outcome = reply.find("\"overloaded\"") != std::string_view::npos ? StormOutcome::Shed
                                                                       : StormOutcome::Served;
    } else {
      outcome = StormOutcome::TimedOut;  // sat in the (bounded) queue
    }
  }
  ::close(fd);
  *latency_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
  return outcome;
}

void print_reproduction(const char* argv0) {
  DaemonOptions opts{
      (fs::temp_directory_path() / ("ara_bench_overload_" + std::to_string(::getpid()) + ".sock"))
          .string(),
      /*jobs=*/kClients + 1,  // 8 spammers + the status poller, all persistent
      /*max_resident_mb=*/256, /*analyze_jobs=*/1};
  opts.max_inflight = kMaxInflight;
  opts.max_queue = kMaxQueue;
  opts.retry_after_ms = kRetryAfterMs;
  DaemonServer server(std::move(opts));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "cannot start daemon: %s\n", error.c_str());
    std::exit(1);
  }

  const std::string query = "{\"project\":\"overload\"}";
  std::vector<double> uncontended;
  {
    DaemonClient setup;
    if (!setup.connect(server.socket_path(), &error)) {
      std::fprintf(stderr, "cannot connect: %s\n", error.c_str());
      std::exit(1);
    }
    const auto analyzed = setup.call("analyze", analyze_params());
    if (!analyzed.has_value() || !analyzed->ok) {
      std::fprintf(stderr, "warm analyze failed\n");
      std::exit(1);
    }
    // Uncontended warm-query p99: the reference the loaded p99 is held to.
    for (int i = 0; i < 20; ++i) (void)setup.call("query", query);
    for (int i = 0; i < 300; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = setup.call("query", query);
      if (!r.has_value() || !r->ok) {
        std::fprintf(stderr, "uncontended query failed\n");
        std::exit(1);
      }
      uncontended.push_back(
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count());
    }
  }  // close the setup connection: its pool worker goes back to the spammers

  // Saturating load: every reply is classified, every request must be
  // answered. Admitted requests (ok) and sheds (code "overloaded") are
  // timed separately.
  std::atomic<bool> load_running{true};
  std::atomic<int> admitted{0}, shed{0}, lost{0};
  std::vector<std::vector<double>> admitted_ms(kClients), shed_ms(kClients);
  std::atomic<std::size_t> max_queued{0};

  std::thread poller([&] {
    DaemonClient status;
    if (!status.connect(server.socket_path(), nullptr)) return;
    while (load_running.load()) {
      const auto r = status.call("status", "{}");
      if (r.has_value() && r->ok) {
        if (const ara::json::Value* o = r->result.find("overload")) {
          if (const ara::json::Value* q = o->find("queued"); q != nullptr && q->is_number()) {
            std::size_t depth = static_cast<std::size_t>(q->number);
            std::size_t seen = max_queued.load();
            while (depth > seen && !max_queued.compare_exchange_weak(seen, depth)) {
            }
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> spammers;
  spammers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    spammers.emplace_back([&, c] {
      DaemonClient client;
      (void)client.connect(server.socket_path(), nullptr);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        // A connection shed at the accept gate is answered then closed, so
        // a compliant spammer reconnects on transport loss (exactly what
        // call_retry does; spelled out here so sheds stay classifiable).
        // The timed window is the single round trip that produced the
        // reply — reconnect backoffs are client policy, not service time.
        std::optional<ara::daemon::RpcReply> reply;
        double ms = 0;
        for (int attempt = 0; attempt < 5 && !reply.has_value(); ++attempt) {
          if (!client.connected() && !client.connect(server.socket_path(), nullptr)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(kRetryAfterMs));
            continue;
          }
          const auto t0 = std::chrono::steady_clock::now();
          reply = client.call("query", query);
          ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                   .count();
          if (!reply.has_value()) {
            client.close();
            std::this_thread::sleep_for(std::chrono::milliseconds(kRetryAfterMs));
          }
        }
        if (!reply.has_value()) {
          ++lost;
        } else if (reply->ok) {
          ++admitted;
          admitted_ms[static_cast<std::size_t>(c)].push_back(ms);
          // Closed-loop think time: real interactive clients do not spin —
          // and 8 threads busy-spinning on one core would measure the OS
          // scheduler, not the daemon.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else {
          ++shed;
          shed_ms[static_cast<std::size_t>(c)].push_back(ms);
          // A compliant client backs off as told before hammering again —
          // without this the spam degenerates into a shed-reply microbench.
          std::this_thread::sleep_for(std::chrono::milliseconds(
              reply->retry_after_ms >= 0 ? static_cast<std::uint64_t>(reply->retry_after_ms)
                                         : kRetryAfterMs));
        }
      }
    });
  }

  // Connection storm against the bounded accept queue, while the spam runs:
  // the workers are all pinned to persistent connections, so a stormer is
  // either shed from the accept thread (the fast path under test) or parks
  // in the queue until its 50 ms client-side timeout trips.
  int storm_shed = 0, storm_served = 0, storm_timeout = 0;
  std::vector<double> storm_shed_ms;
  for (int s = 0; s < kStormConnections; ++s) {
    double ms = 0;
    switch (storm_probe(server.socket_path(), &ms)) {
      case StormOutcome::Shed:
        ++storm_shed;
        storm_shed_ms.push_back(ms);
        break;
      case StormOutcome::Served:
        ++storm_served;
        break;
      default:
        ++storm_timeout;
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (std::thread& t : spammers) t.join();
  load_running.store(false);
  poller.join();

  std::vector<double> all_admitted, all_shed;
  for (const auto& v : admitted_ms) all_admitted.insert(all_admitted.end(), v.begin(), v.end());
  for (const auto& v : shed_ms) all_shed.insert(all_shed.end(), v.begin(), v.end());

  const double p99_uncontended = percentile(uncontended, 99);
  const double p99_admitted = percentile(all_admitted, 99);
  const double p99_shed = percentile(all_shed, 99);
  const double p99_storm_shed = percentile(storm_shed_ms, 99);
  const int responses = admitted.load() + shed.load();
  const double shed_rate =
      responses == 0 ? 0 : 100.0 * static_cast<double>(shed.load()) / responses;

  std::printf("=== arad under saturating load (%d clients x %d requests, inflight budget %zu) ===\n",
              kClients, kRequestsPerClient, kMaxInflight);
  std::printf("  uncontended warm query:  p99 %.3f ms\n", p99_uncontended);
  std::printf("  admitted under load:     %5d requests, p99 %.3f ms (%.2fx uncontended)\n",
              admitted.load(), p99_admitted,
              p99_uncontended > 0 ? p99_admitted / p99_uncontended : 0);
  std::printf("  shed under load:         %5d requests (%.1f%%), p99 %.3f ms\n", shed.load(),
              shed_rate, p99_shed);
  std::printf("  lost (no response):      %5d requests\n", lost.load());
  std::printf("  storm (%d conns):        %d shed (p99 %.3f ms), %d served, %d queued out\n",
              kStormConnections, storm_shed, p99_storm_shed, storm_served, storm_timeout);
  std::printf("  max queue depth seen:    %zu (budget %zu)\n", max_queued.load(), kMaxQueue);

  server.request_shutdown(false);
  server.stop();

  ara::bench::BenchJson json("daemon_overload", "synthetic-bulk");
  json.metric("clients", kClients, "count", "exact");
  json.metric("requests_per_client", kRequestsPerClient, "count", "exact");
  json.metric("requests_total", kClients * kRequestsPerClient, "count", "exact");
  json.metric("responses_total", responses, "count", "exact");
  json.metric("lost_requests", lost.load(), "count", "exact");
  json.metric("storm_connections", kStormConnections, "count", "exact");
  json.metric("max_inflight", static_cast<double>(kMaxInflight), "count", "exact");
  json.metric("max_queue", static_cast<double>(kMaxQueue), "count", "exact");
  json.metric("shed_rate_pct", shed_rate, "%", "neutral");
  json.metric("uncontended_query_p99_ms", p99_uncontended, "ms", "lower");
  json.metric("admitted_p99_ms", p99_admitted, "ms", "lower");
  json.metric("admitted_p99_over_uncontended",
              p99_uncontended > 0 ? p99_admitted / p99_uncontended : 0, "x", "neutral");
  json.metric("shed_p99_ms", p99_shed, "ms", "lower");
  json.metric("storm_shed_p99_ms", p99_storm_shed, "ms", "lower");
  json.metric("max_queue_depth_observed", static_cast<double>(max_queued.load()), "count",
              "neutral");
  json.write_next_to(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  (void)ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  return 0;
}
