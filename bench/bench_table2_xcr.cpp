// Table II / Fig 12 reproduction: the one-dimensional array analysis rows
// for XCR in LU's verify.
//
// Paper (Table II):
//   XCR verify.o USE    refs 4, dims 1, 1:5:1, esize 8, double, 5, 5, 40,
//                       b79edfa0, density 10
//   XCR verify.o FORMAL refs 1, same shape, density 2
// Fig 12 additionally shows CLASS (char, DEF 9, density 900) and XCE rows
// with a distinct Mem_Loc.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/table.hpp"
#include "support/string_utils.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();

  std::printf("=== Table II / Fig 12: XCR in verify ===\n");
  const ara::rgn::RegionRow* use = nullptr;
  const ara::rgn::RegionRow* formal = nullptr;
  const ara::rgn::RegionRow* class_def = nullptr;
  const ara::rgn::RegionRow* xce_use = nullptr;
  std::size_t use_rows = 0;
  for (const auto& row : result.rows) {
    if (!ara::iequals(row.scope, "verify")) continue;
    if (ara::iequals(row.array, "xcr") && row.mode == "USE") {
      use = &row;
      ++use_rows;
    }
    if (ara::iequals(row.array, "xcr") && row.mode == "FORMAL") formal = &row;
    if (ara::iequals(row.array, "class") && row.mode == "DEF" && class_def == nullptr) {
      class_def = &row;
    }
    if (ara::iequals(row.array, "xce") && row.mode == "USE" && xce_use == nullptr) {
      xce_use = &row;
    }
  }
  if (use == nullptr || formal == nullptr || class_def == nullptr || xce_use == nullptr) {
    std::printf("  MISSING ROWS\n");
    return;
  }
  ara::bench::report("XCR USE references", "4", std::to_string(use->references));
  ara::bench::report("XCR USE region", "1:5:1", ara::bench::fmt_rows(*use));
  ara::bench::report("XCR element size / type", "8 double",
                     std::to_string(use->element_size) + " " + use->data_type);
  ara::bench::report("XCR dim/tot/bytes", "5/5/40",
                     use->dim_size + "/" + std::to_string(use->tot_size) + "/" +
                         std::to_string(use->size_bytes));
  ara::bench::report("XCR USE access density", "10", std::to_string(use->acc_density));
  ara::bench::report("XCR FORMAL references", "1", std::to_string(formal->references));
  ara::bench::report("XCR FORMAL access density", "2", std::to_string(formal->acc_density));
  ara::bench::report("XCR FORMAL Mem_Loc == USE Mem_Loc", "yes",
                     formal->mem_loc == use->mem_loc ? "yes" : "NO");
  ara::bench::report("XCE Mem_Loc distinct from XCR", "yes",
                     xce_use->mem_loc != use->mem_loc ? "yes" : "NO");
  ara::bench::report("CLASS DEF references", "9", std::to_string(class_def->references));
  ara::bench::report("CLASS access density", "900", std::to_string(class_def->acc_density));
  ara::bench::report("file column", "verify.o", use->file);

  std::printf("\n%s\n", ara::dragon::ArrayTable(result.rows).render("verify", "xcr").c_str());
}

void BM_VerifyScopeFilter(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  const ara::dragon::ArrayTable table(result.rows);
  for (auto _ : state) {
    auto rows = table.rows_for_scope("verify");
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_VerifyScopeFilter)->Unit(benchmark::kMicrosecond);

void BM_FindXcr(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  const ara::dragon::ArrayTable table(result.rows);
  for (auto _ : state) {
    auto hits = table.find("xcr");
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_FindXcr)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
