// Ablation: why the tool works at H-WHIRL. The paper keys its extraction to
// the high levels "since the form of array subscripting is preserved via
// ARRAY operator" (§IV-B) and dismisses low-level approaches because there
// "arrays lose their structures" (§II). We lower the same LU program to
// M-WHIRL (explicit address arithmetic) and measure what the identical
// region analysis recovers at each level.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "ir/mlower.hpp"

namespace {

std::size_t array_region_rows(const ara::ipa::AnalysisResult& result) {
  std::size_t n = 0;
  for (const auto& row : result.rows) {
    if ((row.mode == "USE" || row.mode == "DEF") && row.tot_size > 1) ++n;
  }
  return n;
}

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto h_result = cc->analyze();

  const ara::ir::Program m_program = ara::ir::lower_program_to_m(cc->program());
  const auto m_result = ara::ipa::analyze(m_program);

  std::size_t h_nodes = 0, m_nodes = 0, h_arrays = 0, m_arrays = 0;
  for (const auto& p : cc->program().procedures) {
    h_nodes += p.tree->tree_size();
    h_arrays += ara::ir::count_array_nodes(*p.tree);
  }
  for (const auto& p : m_program.procedures) {
    m_nodes += p.tree->tree_size();
    m_arrays += ara::ir::count_array_nodes(*p.tree);
  }

  std::printf("=== WHIRL-level ablation on NAS LU ===\n");
  std::printf("  %-34s %12s %12s\n", "", "H-WHIRL", "M-WHIRL");
  std::printf("  %-34s %12zu %12zu\n", "tree nodes", h_nodes, m_nodes);
  std::printf("  %-34s %12zu %12zu\n", "explicit ARRAY operators", h_arrays, m_arrays);
  std::printf("  %-34s %12zu %12zu\n", "array USE/DEF region rows recovered",
              array_region_rows(h_result), array_region_rows(m_result));
  std::printf("  (the paper's point: the analysis must run where the ARRAY operator\n"
              "   still exists — at M level, \"arrays lose their structures\")\n\n");
}

void BM_LowerLuToM(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  for (auto _ : state) {
    auto m = ara::ir::lower_program_to_m(cc->program());
    benchmark::DoNotOptimize(m.procedures.size());
  }
}
BENCHMARK(BM_LowerLuToM)->Unit(benchmark::kMillisecond);

void BM_AnalyzeAtLevel(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const bool m_level = state.range(0) == 1;
  const ara::ir::Program m_program =
      m_level ? ara::ir::lower_program_to_m(cc->program()) : ara::ir::Program{};
  const ara::ir::Program& program = m_level ? m_program : cc->program();
  for (auto _ : state) {
    auto result = ara::ipa::analyze(program);
    benchmark::DoNotOptimize(result.rows.size());
  }
  state.SetLabel(m_level ? "M-WHIRL" : "H-WHIRL");
}
BENCHMARK(BM_AnalyzeAtLevel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
