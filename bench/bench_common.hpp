// Shared helpers for the benchmark binaries: workload loading and the
// paper-vs-measured reporting format used by EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "driver/compiler.hpp"

namespace ara::bench {

inline std::vector<std::filesystem::path> lu_sources() {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(fs::path(ARA_WORKLOADS_DIR) / "lu")) {
    if (e.path().extension() == ".f") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

inline std::unique_ptr<driver::Compiler> compile_lu() {
  auto cc = std::make_unique<driver::Compiler>();
  for (const auto& f : lu_sources()) {
    if (!cc->add_file(f)) {
      std::fprintf(stderr, "cannot read %s\n", f.string().c_str());
      std::exit(1);
    }
  }
  if (!cc->compile()) {
    std::fprintf(stderr, "%s", cc->diagnostics().render().c_str());
    std::exit(1);
  }
  return cc;
}

inline std::unique_ptr<driver::Compiler> compile_workload(const char* relative) {
  auto cc = std::make_unique<driver::Compiler>();
  const auto path = std::filesystem::path(ARA_WORKLOADS_DIR) / relative;
  if (!cc->add_file(path)) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    std::exit(1);
  }
  if (!cc->compile()) {
    std::fprintf(stderr, "%s", cc->diagnostics().render().c_str());
    std::exit(1);
  }
  return cc;
}

/// One line of the paper-vs-measured report.
inline void report(const char* what, const std::string& paper, const std::string& measured) {
  const bool match = paper == measured;
  std::printf("  %-46s paper=%-24s measured=%-24s %s\n", what, paper.c_str(), measured.c_str(),
              match ? "MATCH" : "(see EXPERIMENTS.md)");
}

inline std::string fmt_rows(const rgn::RegionRow& r) {
  return r.lb + ":" + r.ub + ":" + r.stride;
}

}  // namespace ara::bench
