// Shared helpers for the benchmark binaries: workload loading, the
// paper-vs-measured reporting format used by EXPERIMENTS.md, and the
// unified BENCH_*.json writer (ara.bench.v1) that arareport diffs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/compiler.hpp"

namespace ara::bench {

inline std::vector<std::filesystem::path> lu_sources() {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(fs::path(ARA_WORKLOADS_DIR) / "lu")) {
    if (e.path().extension() == ".f") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

inline std::unique_ptr<driver::Compiler> compile_lu() {
  auto cc = std::make_unique<driver::Compiler>();
  for (const auto& f : lu_sources()) {
    if (!cc->add_file(f)) {
      std::fprintf(stderr, "cannot read %s\n", f.string().c_str());
      std::exit(1);
    }
  }
  if (!cc->compile()) {
    std::fprintf(stderr, "%s", cc->diagnostics().render().c_str());
    std::exit(1);
  }
  return cc;
}

inline std::unique_ptr<driver::Compiler> compile_workload(const char* relative) {
  auto cc = std::make_unique<driver::Compiler>();
  const auto path = std::filesystem::path(ARA_WORKLOADS_DIR) / relative;
  if (!cc->add_file(path)) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    std::exit(1);
  }
  if (!cc->compile()) {
    std::fprintf(stderr, "%s", cc->diagnostics().render().c_str());
    std::exit(1);
  }
  return cc;
}

/// One line of the paper-vs-measured report.
inline void report(const char* what, const std::string& paper, const std::string& measured) {
  const bool match = paper == measured;
  std::printf("  %-46s paper=%-24s measured=%-24s %s\n", what, paper.c_str(), measured.c_str(),
              match ? "MATCH" : "(see EXPERIMENTS.md)");
}

inline std::string fmt_rows(const rgn::RegionRow& r) {
  return r.lb + ":" + r.ub + ":" + r.stride;
}

/// Strips `flag` from argv if present (so it never reaches
/// benchmark::Initialize) and reports whether it was there.
inline bool consume_flag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], flag) == 0) {
      found = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return found;
}

/// Builder for the unified benchmark record (ara.bench.v1, docs/FORMATS.md).
/// Each bench binary writes BENCH_<bench>.json next to itself so arareport
/// can diff two build trees (or a run against bench/baselines/). Metrics
/// carry an explicit comparison direction: "lower" (latencies), "higher"
/// (speedups), "exact" (structural inventory — any drift is a regression),
/// or "neutral" (informational).
class BenchJson {
 public:
  BenchJson(std::string bench, std::string workload)
      : bench_(std::move(bench)), workload_(std::move(workload)) {}

  void metric(const std::string& name, double value, const char* unit, const char* better) {
    metrics_.push_back({name, value, unit, better});
  }

  [[nodiscard]] std::string render() const {
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"ara.bench.v1\",\n";
    out += "  \"bench\": \"" + bench_ + "\",\n";
    out += "  \"workload\": \"" + workload_ + "\",\n";
    out += "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Entry& m = metrics_[i];
      char value[64];
      if (m.value == std::floor(m.value) && std::fabs(m.value) < 1e15) {
        std::snprintf(value, sizeof value, "%.0f", m.value);
      } else {
        std::snprintf(value, sizeof value, "%.4f", m.value);
      }
      out += "    \"" + m.name + "\": {\"value\": " + value + ", \"unit\": \"" + m.unit +
             "\", \"better\": \"" + m.better + "\"}";
      out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  }\n";
    out += "}\n";
    return out;
  }

  /// Writes BENCH_<bench>.json into the directory holding the running
  /// binary (argv[0]); falls back to the cwd when argv[0] has no parent.
  bool write_next_to(const char* argv0) const {
    namespace fs = std::filesystem;
    fs::path dir = fs::path(argv0).parent_path();
    if (dir.empty()) dir = ".";
    const fs::path path = dir / ("BENCH_" + bench_ + ".json");
    std::ofstream f(path);
    f << render();
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
      return false;
    }
    std::printf("wrote %s\n", path.string().c_str());
    return true;
  }

 private:
  struct Entry {
    std::string name;
    double value;
    const char* unit;
    const char* better;
  };
  std::string bench_;
  std::string workload_;
  std::vector<Entry> metrics_;
};

}  // namespace ara::bench
