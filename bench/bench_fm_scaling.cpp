// §III ablation: "Fourier-Motzkin linear system solver, which has worst case
// exponential time, is needed to compare Regions". This bench measures FM
// feasibility time against variable and constraint counts — the practical
// cost of the Regions method's precision, and one of the design trade-offs
// DESIGN.md calls out (our dimension variables stay few, so real queries sit
// on the flat part of the curve).
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>

#include "bench_common.hpp"
#include "regions/linsys.hpp"

namespace {

using namespace ara::regions;

/// Dense random system: every constraint touches every variable, the shape
/// that triggers FM's quadratic-per-step growth.
LinSystem dense_system(std::size_t nvars, std::size_t ncons, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> coef(-3, 3);
  std::uniform_int_distribution<std::int64_t> rhs(0, 50);
  LinSystem sys;
  for (std::size_t v = 0; v < nvars; ++v) {
    const std::string name = "x" + std::to_string(v);
    sys.add(make_ge(LinExpr::var(name), LinExpr(0)));
    sys.add(make_le(LinExpr::var(name), LinExpr(40)));
  }
  for (std::size_t c = 0; c < ncons; ++c) {
    LinExpr e(-rhs(rng));
    for (std::size_t v = 0; v < nvars; ++v) {
      e += LinExpr::var("x" + std::to_string(v), coef(rng));
    }
    sys.add(Constraint{e, Constraint::Rel::Le0});
  }
  return sys;
}

/// FM-stress corpus: the deep coupled-subscript / many-ivar shapes the fuzz
/// grid generates, plus the cross-procedure repetition pattern (identical
/// summaries analyzed again and again) that the Regions pipeline produces.
/// Deterministic by construction — the corpus inventory metrics are exact
/// reproducibility anchors for the perf gate.
std::vector<LinSystem> fm_stress_corpus() {
  std::vector<LinSystem> corpus;
  // (a) Dense random systems (every constraint touches every variable).
  for (std::size_t nvars = 3; nvars <= 6; ++nvars) {
    for (unsigned seed = 1; seed <= 3; ++seed) {
      corpus.push_back(dense_system(nvars, 4, seed));
    }
  }
  // (b) Triangular chains x0 <= x1 <= ... <= xk with box bounds and one
  // coupling row — the imperfect-nest shape (inner bounds reading outer
  // ivars) that drives elimination-order sensitivity.
  for (std::size_t depth = 4; depth <= 7; ++depth) {
    LinSystem sys;
    LinExpr coupling;
    for (std::size_t v = 0; v < depth; ++v) {
      const std::string name = "i" + std::to_string(v);
      sys.add(make_ge(LinExpr::var(name), LinExpr(1)));
      sys.add(make_le(LinExpr::var(name), LinExpr(60)));
      if (v > 0) {
        sys.add(make_le(LinExpr::var("i" + std::to_string(v - 1)), LinExpr::var(name)));
      }
      coupling += LinExpr::var(name, v % 2 == 0 ? 1 : -1);
    }
    sys.add(make_le(coupling, LinExpr(10)));
    corpus.push_back(std::move(sys));
  }
  // (c) Coupled-subscript equality systems: the dependence-test shape
  // (two renamed instances constrained equal), which FM resolves through
  // the equality-substitution fast path and pair combination.
  for (unsigned seed = 1; seed <= 6; ++seed) {
    std::mt19937 rng(seed * 77);
    std::uniform_int_distribution<std::int64_t> coef(-2, 2);
    LinSystem sys;
    for (const char* suffix : {"!1", "!2"}) {
      for (std::size_t v = 0; v < 3; ++v) {
        const std::string name = "i" + std::to_string(v) + suffix;
        sys.add(make_ge(LinExpr::var(name), LinExpr(0)));
        sys.add(make_le(LinExpr::var(name), LinExpr(30)));
      }
    }
    for (std::size_t d = 0; d < 2; ++d) {
      LinExpr diff;
      for (std::size_t v = 0; v < 3; ++v) {
        const std::int64_t c = coef(rng);
        diff += LinExpr::var("i" + std::to_string(v) + "!1", c);
        diff -= LinExpr::var("i" + std::to_string(v) + "!2", c == 0 ? 1 : c);
      }
      diff += LinExpr(coef(rng));
      sys.add(Constraint{std::move(diff), Constraint::Rel::Eq0});
    }
    sys.add(make_le(LinExpr::var("i0!1") + LinExpr(1), LinExpr::var("i0!2")));
    corpus.push_back(std::move(sys));
  }
  // (d) The cross-procedure repetition pattern: each distinct system above
  // re-appears three more times, the way identical callee summaries are
  // re-projected at every call site.
  const std::size_t distinct = corpus.size();
  for (int copy = 0; copy < 3; ++copy) {
    for (std::size_t i = 0; i < distinct; ++i) corpus.push_back(corpus[i]);
  }
  return corpus;
}

/// Runs the stress corpus once: every system answers feasible(), then the
/// lowest-named variable's const_bounds (the to_region projection pattern).
/// Returns (feasible count, bounded count) — exact anchors.
std::pair<std::size_t, std::size_t> run_stress_pass(const std::vector<LinSystem>& corpus) {
  std::size_t feasible = 0;
  std::size_t bounded = 0;
  for (const LinSystem& sys : corpus) {
    if (sys.feasible()) ++feasible;
    const auto vars = sys.variables();
    if (!vars.empty()) {
      const auto b = sys.const_bounds(vars.front());
      if (b.lower && b.upper) ++bounded;
    }
  }
  return {feasible, bounded};
}

void print_reproduction(const char* argv0) {
  ara::bench::BenchJson json("fm_scaling", "dense-random");
  std::printf("=== FM scaling (the §III cost note) ===\n");
  std::printf("  feasibility of dense systems; constraints grow after each elimination\n");
  std::printf("  %-8s %-12s %-14s\n", "vars", "constraints", "feasible?");
  for (std::size_t nvars : {2u, 3u, 4u, 5u, 6u}) {
    const LinSystem sys = dense_system(nvars, 4, 7);
    const bool feasible = sys.feasible();
    std::printf("  %-8zu %-12zu %-14s\n", nvars, sys.size(), feasible ? "yes" : "no");
    // Fixed seed => the system and its verdict are exact reproducibility
    // anchors; only the timing below is a measurement.
    json.metric("feasible_vars" + std::to_string(nvars), feasible ? 1.0 : 0.0, "bool",
                "exact");
  }
  const LinSystem big = dense_system(6, 6, 7);
  const auto t0 = std::chrono::steady_clock::now();
  const bool big_feasible = big.feasible();
  const double feasible_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  benchmark::DoNotOptimize(big_feasible);
  json.metric("feasible6x6_ms", feasible_ms, "ms", "lower");

  // FM-stress corpus: the perf-smoke gate's throughput anchor. Inventory
  // metrics are exact (any drift is a behavior change); the timing pair is
  // the regression gate proper.
  const std::vector<LinSystem> corpus = fm_stress_corpus();
  const auto [feasible_n, bounded_n] = run_stress_pass(corpus);  // warm-up + anchors
  constexpr int kStressReps = 8;
  const auto s0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kStressReps; ++rep) {
    const auto again = run_stress_pass(corpus);
    benchmark::DoNotOptimize(again.first + again.second);
  }
  const double stress_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - s0).count();
  const double per_sec =
      stress_ms > 0.0 ? corpus.size() * kStressReps / (stress_ms / 1000.0) : 0.0;
  std::printf("  FM-stress corpus: %zu systems, %zu feasible, %zu bounded, %.1f ms "
              "(%.0f systems/sec)\n",
              corpus.size(), feasible_n, bounded_n, stress_ms, per_sec);
  json.metric("fm_stress_systems", static_cast<double>(corpus.size()), "count", "exact");
  json.metric("fm_stress_feasible", static_cast<double>(feasible_n), "count", "exact");
  json.metric("fm_stress_bounded", static_cast<double>(bounded_n), "count", "exact");
  json.metric("fm_stress_ms", stress_ms, "ms", "lower");
  json.metric("fm_stress_sys_per_sec", per_sec, "count", "higher");
  json.write_next_to(argv0);
  std::printf("  (timings below show the super-linear growth in vars)\n\n");
}

void BM_FmFeasible(benchmark::State& state) {
  const std::size_t nvars = static_cast<std::size_t>(state.range(0));
  const std::size_t ncons = static_cast<std::size_t>(state.range(1));
  const LinSystem sys = dense_system(nvars, ncons, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.feasible());
  }
}
BENCHMARK(BM_FmFeasible)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {4, 6}})
    ->Unit(benchmark::kMillisecond);

void BM_FmEliminateOne(benchmark::State& state) {
  const LinSystem sys = dense_system(static_cast<std::size_t>(state.range(0)), 6, 11);
  for (auto _ : state) {
    auto out = sys.eliminated("x0");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_FmEliminateOne)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

void BM_ConstBounds(benchmark::State& state) {
  const LinSystem sys = dense_system(static_cast<std::size_t>(state.range(0)), 6, 3);
  for (auto _ : state) {
    auto b = sys.const_bounds("x0");
    benchmark::DoNotOptimize(b.lower.has_value());
  }
}
BENCHMARK(BM_ConstBounds)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
