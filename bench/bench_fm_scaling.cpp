// §III ablation: "Fourier-Motzkin linear system solver, which has worst case
// exponential time, is needed to compare Regions". This bench measures FM
// feasibility time against variable and constraint counts — the practical
// cost of the Regions method's precision, and one of the design trade-offs
// DESIGN.md calls out (our dimension variables stay few, so real queries sit
// on the flat part of the curve).
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>

#include "bench_common.hpp"
#include "regions/linsys.hpp"

namespace {

using namespace ara::regions;

/// Dense random system: every constraint touches every variable, the shape
/// that triggers FM's quadratic-per-step growth.
LinSystem dense_system(std::size_t nvars, std::size_t ncons, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> coef(-3, 3);
  std::uniform_int_distribution<std::int64_t> rhs(0, 50);
  LinSystem sys;
  for (std::size_t v = 0; v < nvars; ++v) {
    const std::string name = "x" + std::to_string(v);
    sys.add(make_ge(LinExpr::var(name), LinExpr(0)));
    sys.add(make_le(LinExpr::var(name), LinExpr(40)));
  }
  for (std::size_t c = 0; c < ncons; ++c) {
    LinExpr e(-rhs(rng));
    for (std::size_t v = 0; v < nvars; ++v) {
      e += LinExpr::var("x" + std::to_string(v), coef(rng));
    }
    sys.add(Constraint{e, Constraint::Rel::Le0});
  }
  return sys;
}

void print_reproduction(const char* argv0) {
  ara::bench::BenchJson json("fm_scaling", "dense-random");
  std::printf("=== FM scaling (the §III cost note) ===\n");
  std::printf("  feasibility of dense systems; constraints grow after each elimination\n");
  std::printf("  %-8s %-12s %-14s\n", "vars", "constraints", "feasible?");
  for (std::size_t nvars : {2u, 3u, 4u, 5u, 6u}) {
    const LinSystem sys = dense_system(nvars, 4, 7);
    const bool feasible = sys.feasible();
    std::printf("  %-8zu %-12zu %-14s\n", nvars, sys.size(), feasible ? "yes" : "no");
    // Fixed seed => the system and its verdict are exact reproducibility
    // anchors; only the timing below is a measurement.
    json.metric("feasible_vars" + std::to_string(nvars), feasible ? 1.0 : 0.0, "bool",
                "exact");
  }
  const LinSystem big = dense_system(6, 6, 7);
  const auto t0 = std::chrono::steady_clock::now();
  const bool big_feasible = big.feasible();
  const double feasible_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  benchmark::DoNotOptimize(big_feasible);
  json.metric("feasible6x6_ms", feasible_ms, "ms", "lower");
  json.write_next_to(argv0);
  std::printf("  (timings below show the super-linear growth in vars)\n\n");
}

void BM_FmFeasible(benchmark::State& state) {
  const std::size_t nvars = static_cast<std::size_t>(state.range(0));
  const std::size_t ncons = static_cast<std::size_t>(state.range(1));
  const LinSystem sys = dense_system(nvars, ncons, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.feasible());
  }
}
BENCHMARK(BM_FmFeasible)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {4, 6}})
    ->Unit(benchmark::kMillisecond);

void BM_FmEliminateOne(benchmark::State& state) {
  const LinSystem sys = dense_system(static_cast<std::size_t>(state.range(0)), 6, 11);
  for (auto _ : state) {
    auto out = sys.eliminated("x0");
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_FmEliminateOne)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

void BM_ConstBounds(benchmark::State& state) {
  const LinSystem sys = dense_system(static_cast<std::size_t>(state.range(0)), 6, 3);
  for (auto _ : state) {
    auto b = sys.const_bounds("x0");
    benchmark::DoNotOptimize(b.lower.has_value());
  }
}
BENCHMARK(BM_ConstBounds)->DenseRange(2, 6, 2)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
