// Batch-engine scaling: the same generated 32-unit workload through
// serve::run_batch cold (no cache) at --jobs 1/2/4/8, then warm (every unit
// replayed from the summary cache). The headline on a single-core container
// is the warm/cold ratio — thread scaling only shows up when the host
// actually has cores to give — so the BENCH_serve.json record carries both.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/engine.hpp"

namespace {

namespace fs = std::filesystem;
using ara::serve::BatchOptions;
using ara::serve::BatchResult;
using ara::serve::SourceBuffer;

/// 32 single-procedure units plus a driver calling all of them: enough
/// independent parses for the pool to spread, with real cross-unit
/// propagation at link time.
std::vector<SourceBuffer> generated_workload() {
  std::vector<SourceBuffer> sources;
  std::string driver_body;
  constexpr int kUnits = 32;
  for (int u = 0; u < kUnits; ++u) {
    const std::string n = std::to_string(u);
    std::string text;
    text += "subroutine kern" + n + "(a, b)\n";
    text += "  integer, dimension(1:128, 1:128) :: a, b\n";
    text += "  integer :: i, j, k, l, s\n";
    text += "  s = 0\n";
    // Deep nests with composite subscripts: heavy per-unit work (parsing,
    // lowering, and a 4-variable projection per access) that a warm cache
    // skips, while the region/row count — the serial link phase's share —
    // stays small.
    for (int nest = 0; nest < 6; ++nest) {
      const std::string lo = std::to_string(1 + (u + nest) % 8);
      const std::string hi = std::to_string(48 + (u + nest) % 8);
      text += "  do i = " + lo + ", " + hi + "\n";
      text += "    do j = 1, " + std::to_string(48 + nest) + "\n";
      text += "      do k = 1, 16\n";
      text += "        do l = 1, 4\n";
      text += "          a(i + k, j + l) = i + j + " + std::to_string(nest) + "\n";
      text += "          s = s + b(j + l, i + k)\n";
      text += "        end do\n";
      text += "      end do\n";
      text += "    end do\n";
      text += "  end do\n";
    }
    text += "end subroutine kern" + n + "\n";
    sources.push_back({"kern" + n + ".f", std::move(text), ara::Language::Fortran});
    driver_body += "  call kern" + n + "(a, b)\n";
  }
  std::string main_text;
  main_text += "subroutine drive\n";
  main_text += "  integer, dimension(1:128, 1:128) :: a, b\n";
  main_text += driver_body;
  main_text += "end subroutine drive\n";
  sources.push_back({"drive.f", std::move(main_text), ara::Language::Fortran});
  return sources;
}

double batch_seconds(const std::vector<SourceBuffer>& sources, const BatchOptions& opts,
                     int repeats) {
  double best = 1e9;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const BatchResult r = ara::serve::run_batch(sources, opts, "scaling");
    if (!r.ok) {
      std::fprintf(stderr, "batch run failed\n");
      std::exit(1);
    }
    benchmark::DoNotOptimize(r.link.rows.size());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void print_reproduction(const char* argv0) {
  const std::vector<SourceBuffer> sources = generated_workload();
  const fs::path cache_dir = fs::temp_directory_path() / "ara_bench_serve_cache";
  fs::remove_all(cache_dir);

  std::printf("=== Batch-engine scaling (generated %zu-unit workload, best of 5) ===\n",
              sources.size());
  const std::size_t jobs_list[] = {1, 2, 4, 8};
  double cold_ms[4] = {};
  for (std::size_t k = 0; k < 4; ++k) {
    BatchOptions opts;
    opts.jobs = jobs_list[k];
    cold_ms[k] = batch_seconds(sources, opts, 5) * 1e3;
    std::printf("  cold --jobs %zu:      %8.3f ms  (speedup vs jobs 1: %.2fx)\n",
                jobs_list[k], cold_ms[k], cold_ms[0] / cold_ms[k]);
  }

  BatchOptions cached;
  cached.jobs = 1;
  cached.cache_dir = cache_dir.string();
  batch_seconds(sources, cached, 1);  // populate
  const double warm_ms = batch_seconds(sources, cached, 5) * 1e3;
  std::printf("  warm cache (jobs 1): %8.3f ms  (speedup vs cold jobs 1: %.2fx)\n", warm_ms,
              cold_ms[0] / warm_ms);
  std::printf("  (hardware threads on this host: %u)\n",
              std::thread::hardware_concurrency());

  ara::bench::BenchJson json("serve_scaling", "generated-32");
  json.metric("units", static_cast<double>(sources.size()), "count", "exact");
  json.metric("cold_ms_jobs1", cold_ms[0], "ms", "lower");
  json.metric("cold_ms_jobs2", cold_ms[1], "ms", "lower");
  json.metric("cold_ms_jobs4", cold_ms[2], "ms", "lower");
  json.metric("cold_ms_jobs8", cold_ms[3], "ms", "lower");
  json.metric("warm_ms", warm_ms, "ms", "lower");
  json.metric("parallel_speedup_jobs8", cold_ms[0] / cold_ms[3], "x", "higher");
  json.metric("warm_speedup", cold_ms[0] / warm_ms, "x", "higher");
  json.write_next_to(argv0);
  fs::remove_all(cache_dir);
}

void BM_BatchCold(benchmark::State& state) {
  const std::vector<SourceBuffer> sources = generated_workload();
  BatchOptions opts;
  opts.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const BatchResult r = ara::serve::run_batch(sources, opts, "scaling");
    benchmark::DoNotOptimize(r.link.rows.size());
  }
}
BENCHMARK(BM_BatchCold)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_BatchWarmCache(benchmark::State& state) {
  const std::vector<SourceBuffer> sources = generated_workload();
  const fs::path cache_dir = fs::temp_directory_path() / "ara_bench_serve_warm";
  fs::remove_all(cache_dir);
  BatchOptions opts;
  opts.jobs = static_cast<std::size_t>(state.range(0));
  opts.cache_dir = cache_dir.string();
  {
    const BatchResult r = ara::serve::run_batch(sources, opts, "scaling");
    benchmark::DoNotOptimize(r.ok);
  }
  for (auto _ : state) {
    const BatchResult r = ara::serve::run_batch(sources, opts, "scaling");
    benchmark::DoNotOptimize(r.link.rows.size());
  }
  fs::remove_all(cache_dir);
}
BENCHMARK(BM_BatchWarmCache)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool json_only = ara::bench::consume_flag(&argc, argv, "--json-only");
  print_reproduction(argv[0]);
  if (json_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
