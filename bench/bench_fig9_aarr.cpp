// Fig 9 / Fig 10 reproduction: the array analysis rows of `aarr` in the
// paper's matrix.c example, plus the timing of the full compile+analyze
// pipeline on that input.
//
// Paper rows (Fig 9): aarr matrix.o
//   DEF 2 refs  [0:7:1]  and [1:8:1]   esize 4 int 20 20 80  density 2
//   USE 3 refs  [0:7:1], [0:7:1], [2:6:2]                    density 3
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/table.hpp"
#include "support/string_utils.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_workload("fig10_matrix.c");
  const auto result = cc->analyze();

  std::printf("=== Fig 9: array analysis rows for aarr (matrix.c) ===\n");
  std::vector<std::string> defs, uses;
  for (const auto& row : result.rows) {
    if (!ara::iequals(row.array, "aarr")) continue;
    if (row.mode == "DEF") defs.push_back(ara::bench::fmt_rows(row));
    if (row.mode == "USE") uses.push_back(ara::bench::fmt_rows(row));
  }
  ara::bench::report("aarr DEF region count", "2", std::to_string(defs.size()));
  ara::bench::report("aarr DEF regions", "0:7:1, 1:8:1", ara::join(defs, ", "));
  ara::bench::report("aarr USE region count", "3", std::to_string(uses.size()));
  ara::bench::report("aarr USE regions", "0:7:1, 0:7:1, 2:6:2", ara::join(uses, ", "));
  for (const auto& row : result.rows) {
    if (!ara::iequals(row.array, "aarr") || row.mode != "DEF") continue;
    ara::bench::report("aarr element size", "4", std::to_string(row.element_size));
    ara::bench::report("aarr data type", "int", row.data_type);
    ara::bench::report("aarr dim/tot size", "20/20",
                       row.dim_size + "/" + std::to_string(row.tot_size));
    ara::bench::report("aarr bytes", "80", std::to_string(row.size_bytes));
    ara::bench::report("aarr DEF access density", "2", std::to_string(row.acc_density));
    break;
  }
  for (const auto& row : result.rows) {
    if (!ara::iequals(row.array, "aarr") || row.mode != "USE") continue;
    ara::bench::report("aarr USE access density", "3", std::to_string(row.acc_density));
    break;
  }
  // The §V-A guidance: the accessed hull tells the user to shrink aarr and to
  // copyin only the accessed portion before the last loop.
  std::printf("\n%s\n\n", ara::dragon::ArrayTable(result.rows).render("@", "aarr").c_str());
}

void BM_CompileAndAnalyzeMatrixC(benchmark::State& state) {
  for (auto _ : state) {
    auto cc = ara::bench::compile_workload("fig10_matrix.c");
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_CompileAndAnalyzeMatrixC)->Unit(benchmark::kMicrosecond);

void BM_RowsOnly(benchmark::State& state) {
  auto cc = ara::bench::compile_workload("fig10_matrix.c");
  const auto result = cc->analyze();
  for (auto _ : state) {
    auto rows = ara::ipa::build_rows(cc->program(), result);
    benchmark::DoNotOptimize(rows.size());
  }
}
BENCHMARK(BM_RowsOnly)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
