// Table III / Fig 14 reproduction: the multidimensional analysis rows for
// the global array U in LU's rhs.
//
// Paper (Table III / §V-B Case 2): "array U is a global four dimensional
// double array with these dimension sizes (64|65|65|5), and a total byte
// storage of 10816000 ... It has been used 110 times, which makes it a
// hotspot ... the regions of each dimension that have been accessed in one
// loop in rhs.f source file are (1:3,1:5,1:10,1:4)."
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "dragon/table.hpp"
#include "support/string_utils.hpp"

namespace {

void print_reproduction() {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();

  std::printf("=== Table III / Fig 14: global U in rhs ===\n");
  std::size_t use_rows_rhs = 0;
  const ara::rgn::RegionRow* sample = nullptr;
  bool fig14_region = false;
  for (const auto& row : result.rows) {
    if (row.scope != "@" || !ara::iequals(row.array, "u") || row.mode != "USE") continue;
    if (row.file != "rhs.o") continue;
    ++use_rows_rhs;
    sample = &row;
    fig14_region |= row.lb == "1|1|1|1" && row.ub == "3|5|10|4";
  }
  if (sample == nullptr) {
    std::printf("  MISSING ROWS\n");
    return;
  }
  ara::bench::report("U USE references in rhs.o", "110", std::to_string(use_rows_rhs));
  ara::bench::report("U dimensions", "4", std::to_string(sample->dims));
  ara::bench::report("U dim sizes (row-major)", "64|65|65|5", sample->dim_size);
  ara::bench::report("U total elements", "1352000", std::to_string(sample->tot_size));
  ara::bench::report("U bytes", "10816000", std::to_string(sample->size_bytes));
  ara::bench::report("U element size / type", "8 double",
                     std::to_string(sample->element_size) + " " + sample->data_type);
  ara::bench::report("U access density", "0", std::to_string(sample->acc_density));
  ara::bench::report("Fig 14 region (1:3,1:5,1:10,1:4) present", "yes",
                     fig14_region ? "yes" : "NO");

  // Hotspot claim: U has the highest USE reference count among globals.
  std::uint64_t max_refs = 0;
  std::string max_array;
  for (const auto& row : result.rows) {
    if (row.scope == "@" && row.mode == "USE" && row.references > max_refs) {
      max_refs = row.references;
      max_array = row.array;
    }
  }
  ara::bench::report("hotspot global by USE refs", "u", ara::to_lower(max_array));
  std::printf("\n");
}

void BM_LuFullAnalysis(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  for (auto _ : state) {
    auto result = cc->analyze();
    benchmark::DoNotOptimize(result.rows.size());
  }
}
BENCHMARK(BM_LuFullAnalysis)->Unit(benchmark::kMillisecond);

void BM_LuRgnSerialization(benchmark::State& state) {
  auto cc = ara::bench::compile_lu();
  const auto result = cc->analyze();
  for (auto _ : state) {
    auto text = ara::rgn::write_rgn(result.rows);
    benchmark::DoNotOptimize(text.size());
  }
  state.counters["rows"] = static_cast<double>(result.rows.size());
}
BENCHMARK(BM_LuRgnSerialization)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
